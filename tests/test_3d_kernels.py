"""3-D NDRange coverage: the extension stencil and 3-D runtime paths."""

import numpy as np
import pytest

from repro.apps.harness import compile_app, validate_app
from repro.apps.registry import TABLE_ORDER, get_app

from tests.conftest import run_scalar_kernel


class TestExtensionStencil3D:
    def test_original_correct(self):
        validate_app(get_app("EXT-ST3D"), "with", "test")

    def test_transformed_correct(self):
        validate_app(get_app("EXT-ST3D"), "without", "test")

    def test_seven_3x3_systems_solved(self):
        _, report = compile_app(get_app("EXT-ST3D"), "without")
        rec = report.record("lm")
        assert len(rec.lls) == 7
        sols = {ll.solution.render() for ll in rec.lls}
        assert "lx = lx, ly = ly, lz = lz" in sols
        assert "lx = lx, ly = ly, lz = lz - 1" in sols
        assert "lx = lx, ly = ly, lz = lz + 1" in sols
        assert "lx = lx - 1, ly = ly, lz = lz" in sols

    def test_local_tile_fully_removed(self):
        kernel, report = compile_app(get_app("EXT-ST3D"), "without")
        assert report.fully_disabled
        assert not kernel.local_arrays

    def test_not_in_paper_table(self):
        assert "EXT-ST3D" not in TABLE_ORDER


class TestRuntime3D:
    def test_3d_work_item_ids(self):
        src = """
__kernel void ids(__global int* out)
{
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    int gz = get_global_id(2);
    int w = get_global_size(0);
    int h = get_global_size(1);
    out[(gz*h + gy)*w + gx] = (int)(get_local_id(2)*100
                                    + get_group_id(2)*10000
                                    + get_local_id(0));
}
"""
        _, outs = run_scalar_kernel(
            src, {}, (4, 4, 4), (2, 2, 2), {"out": (np.int32, (64,))}
        )
        got = outs["out"].reshape(4, 4, 4)
        for gz in range(4):
            for gy in range(4):
                for gx in range(4):
                    expected = (gz % 2) * 100 + (gz // 2) * 10000 + gx % 2
                    assert got[gz, gy, gx] == expected

    def test_3d_barrier_and_local(self):
        src = """
__kernel void rot(__global int* out)
{
    __local int lm[2][2][2];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int lz = get_local_id(2);
    lm[lz][ly][lx] = lz*4 + ly*2 + lx;
    barrier(CLK_LOCAL_MEM_FENCE);
    /* read rotated: (x,y,z) <- (y,z,x) */
    int gx = get_global_id(0);
    int w = get_global_size(0);
    int h = get_global_size(1);
    out[(get_global_id(2)*h + get_global_id(1))*w + gx] = lm[lx][lz][ly];
}
"""
        _, outs = run_scalar_kernel(
            src, {}, (2, 2, 2), (2, 2, 2), {"out": (np.int32, (8,))}
        )
        got = outs["out"].reshape(2, 2, 2)
        for z in range(2):
            for y in range(2):
                for x in range(2):
                    assert got[z, y, x] == x * 4 + z * 2 + y

    def test_3d_rotation_staging_reversed_by_grover(self):
        """A 3-D permutation staging solves a full 3x3 system."""
        src = """
__kernel void rot(__global float* out, __global const float* in, int W, int H)
{
    __local float lm[4][4][4];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int lz = get_local_id(2);
    lm[lz][ly][lx] = in[((int)get_global_id(2)*H + (int)get_global_id(1))*W
                        + (int)get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[((int)get_global_id(2)*H + (int)get_global_id(1))*W
        + (int)get_global_id(0)] = lm[lx][lz][ly];
}
"""
        from repro.core import disable_local_memory
        from repro.frontend import compile_kernel
        from tests.conftest import execute_kernel

        n = 8
        rng = np.random.default_rng(2)
        data = rng.random((n, n, n), dtype=np.float32)

        k1 = compile_kernel(src)
        _, o1 = execute_kernel(
            k1, {"in": data, "W": n, "H": n}, (n, n, n), (4, 4, 4),
            {"out": (np.float32, (n, n, n))},
        )
        k2 = compile_kernel(src)
        report = disable_local_memory(k2)
        assert report.fully_disabled
        (rec,) = report.records
        (ll,) = rec.lls
        # lm[lx][lz][ly]: x_LL=ly, y_LL=lz, z_LL=lx -> writer rotation
        assert ll.solution.render() == "lx = ly, ly = lz, lz = lx"
        _, o2 = execute_kernel(
            k2, {"in": data, "W": n, "H": n}, (n, n, n), (4, 4, 4),
            {"out": (np.float32, (n, n, n))},
        )
        np.testing.assert_array_equal(o1["out"], o2["out"])
