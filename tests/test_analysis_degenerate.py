"""Property tests at the Eq. 3 boundary: singular and non-invertible maps.

Three layers, from the solver outwards:

1. ``solve_correspondence`` fed singular coefficient matrices directly —
   the uniqueness check of Eq. 3 must refuse every rank-deficient
   system (coupled unknowns or a missing pivot) and every non-integral
   solution.
2. Kernels whose index map is coupled beyond any stride split
   (``c*(lx+ly)``): Grover refuses with its under-determined
   diagnostic AND the analyzer independently flags the collision.
3. The safety net: *any* non-injective store map is a write-write race,
   and some of them defeat Grover's syntactic stride-splitting (e.g.
   ``lx + 2*ly`` splits into apparently-independent dims because
   nothing bounds ``lx`` by the stride).  Grover alone may be fooled —
   exactly like ``examples/racy_halo.cl`` — so the property that must
   hold is that the ``Session(analyze=True)`` veto gate refuses the
   transform for every such kernel, whether or not the solver does.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import RaceDetected, analyze_source
from repro.core import GroverPass
from repro.core.linexpr import LinExpr
from repro.core.linsys import SolveError, solve_correspondence
from repro.frontend import compile_kernel
from repro.session import Session

LX, LY = 8, 8
LID0, LID1 = ("lid", 0), ("lid", 1)


# ---------------------------------------------------------------------------
# layer 1: the solver itself, fed singular systems over LinExpr
# ---------------------------------------------------------------------------


def _lin(a: int, b: int) -> LinExpr:
    return LinExpr.symbol(LID0).scale(a) + LinExpr.symbol(LID1).scale(b)


nonzero_pair = st.tuples(st.integers(-4, 4), st.integers(-4, 4)).filter(
    lambda t: t != (0, 0)
)


@settings(max_examples=60, deadline=None)
@given(pq=nonzero_pair, st_=nonzero_pair)
def test_singular_systems_have_no_unique_solution(pq, st_):
    # rank-1 by construction: the outer product of (s, t) and (p, q)
    (p, q), (s, t) = pq, st_
    a, b, c, d = s * p, s * q, t * p, t * q
    assert a * d == b * c
    ls = [_lin(a, b), _lin(c, d)]
    ll = [_lin(a, b), _lin(c, d)]  # consistent RHS: failure is uniqueness
    with pytest.raises(SolveError):
        solve_correspondence(ls, ll, required={LID0, LID1})


@settings(max_examples=30, deadline=None)
@given(k=st.integers(2, 9))
def test_strided_store_solution_is_not_integral(k):
    # k*lx = lx' solves to lx = lx'/k: between data elements
    with pytest.raises(SolveError, match="not integral"):
        solve_correspondence(
            [_lin(k, 0)], [LinExpr.symbol(LID0)], required={LID0}
        )


COPRIME = [
    (a, b)
    for a in range(-3, 4) for b in range(-3, 4)
    if (a, b) != (0, 0) and np.gcd(a, b) == 1
]


@settings(max_examples=30, deadline=None)
@given(ab=st.sampled_from(COPRIME), det=st.sampled_from([-1, 1]))
def test_unimodular_systems_solve_exactly(ab, det):
    # complete the coprime row (a, b) to an integer matrix with
    # determinant +-1 via the extended Euclid coefficients
    a, b = ab
    # extended Euclid: find (c, d) with a*d - b*c == det
    g, x, y = _egcd(a, b)
    c, d = -y * det, x * det
    assert a * d - b * c == det
    sol = solve_correspondence(
        [_lin(a, b), _lin(c, d)],
        [_lin(a, b), _lin(c, d)],
        required={LID0, LID1},
    )
    assert LID0 in sol and LID1 in sol
    # the solution maps the reader's ids back to themselves
    assert sol[LID0].render() in ("lx", "get_local_id(0)", "lid0") or sol[LID0].coeff(LID0) == 1


def _egcd(a: int, b: int):
    if b == 0:
        return (a, 1, 0) if a > 0 else (-a, -1, 0)
    g, x, y = _egcd(b, a % b)
    return g, y, x - (a // b) * y


# ---------------------------------------------------------------------------
# layer 2: coupled kernel maps that no stride split can separate
# ---------------------------------------------------------------------------


def coupled_kernel(c: int) -> str:
    """Every work-item (lx, ly) with equal lx+ly collides: singular map."""
    size = c * (LX + LY) + 8
    return f"""
__kernel void k(__global float* out, __global const float* in)
{{
    __local float lm[{size}];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    lm[{c}*(lx + ly)] = in[get_global_id(1)*{LX} + get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(1)*{LX} + get_global_id(0)] = lm[{c}*(lx + ly)];
}}
"""


@settings(max_examples=8, deadline=None)
@given(c=st.integers(1, 8))
def test_coupled_maps_rejected_by_grover_and_flagged_by_analyzer(c):
    src = coupled_kernel(c)
    report = GroverPass(allow_partial=True).run(compile_kernel(src))
    assert [r.name for r in report.rejected] == ["lm"]
    assert "under-determined" in report.rejected[0].reason

    analysis = analyze_source(
        src, global_size=(LX, LY), local_size=(LX, LY), execute=False
    )
    assert analysis.verdict == "race"
    assert analysis.findings_on("lm")


# ---------------------------------------------------------------------------
# layer 3: every non-injective map is stopped by the veto gate, even the
# ones whose stride structure fools the solver into a diagonal system
# ---------------------------------------------------------------------------


def map_kernel_2d(a: int, b: int, c: int, d: int) -> str:
    size = 8 * (abs(a) + abs(b)) * 8 + 8 * (abs(c) + abs(d)) + 64
    return f"""
__kernel void k(__global float* out, __global const float* in)
{{
    __local float lm[{size}];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int idx = ({a}*lx + {b}*ly)*8 + ({c}*lx + {d}*ly);
    lm[idx] = in[get_global_id(1)*{LX} + get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(1)*{LX} + get_global_id(0)] = lm[idx];
}}
"""


def injective_on_box(a: int, b: int, c: int, d: int) -> bool:
    lx, ly = np.meshgrid(np.arange(LX), np.arange(LY), indexing="ij")
    idx = (a * lx + b * ly) * 8 + (c * lx + d * ly)
    return len(np.unique(idx)) == idx.size


# enumerate the 0..3 coefficient box once: sampling beats filtering
_ALL = [
    (a, b, c, d)
    for a in range(4) for b in range(4) for c in range(4) for d in range(4)
]
COLLIDING = [t for t in _ALL if not injective_on_box(*t)]
UNIMODULAR = [
    t for t in _ALL
    if abs(t[0] * t[3] - t[1] * t[2]) == 1 and injective_on_box(*t)
]


@settings(max_examples=40, deadline=None)
@given(t=st.sampled_from(COLLIDING))
def test_no_colliding_map_survives_the_veto_gate(t):
    a, b, c, d = t
    src = map_kernel_2d(a, b, c, d)

    analysis = analyze_source(
        src, global_size=(LX, LY), local_size=(LX, LY), execute=False
    )
    assert analysis.verdict == "race", (
        f"analyzer must flag the colliding map ({a},{b};{c},{d})"
    )

    s = Session(env={}, analyze=True)
    with pytest.raises(RaceDetected):
        s.disable_local_memory(s.compile_kernel(src), local_size=(LX, LY))


@settings(max_examples=40, deadline=None)
@given(t=st.sampled_from(UNIMODULAR))
def test_injective_unimodular_maps_accepted_by_both_arbiters(t):
    a, b, c, d = t
    src = map_kernel_2d(a, b, c, d)

    report = GroverPass(allow_partial=True).run(compile_kernel(src))
    assert [r.name for r in report.transformed] == ["lm"], (
        f"Grover should accept the unimodular map ({a},{b};{c},{d})"
    )

    analysis = analyze_source(
        src, global_size=(LX, LY), local_size=(LX, LY), execute=False
    )
    assert not analysis.races
    assert not analysis.divergences


def test_zero_map_is_the_extreme_singular_case():
    # every work-item hits lm[0]: maximal collision
    src = map_kernel_2d(0, 0, 0, 0)
    report = GroverPass(allow_partial=True).run(compile_kernel(src))
    assert [r.name for r in report.rejected] == ["lm"]
    analysis = analyze_source(
        src, global_size=(LX, LY), local_size=(LX, LY), execute=False
    )
    assert analysis.verdict == "race"
