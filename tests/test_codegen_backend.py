"""The codegen'd compiled-tape tier: bit-identity, eviction, disk cache.

The codegen backend (``REPRO_EXEC_BACKEND=codegen``) emits the recorded
pilot tape as one generated Python module of straight-line fused numpy
statements, ``compile()``/``exec()``'d once and cached per (kernel IR
fingerprint, tape schedule hash, batch size) key.  Its contract is the
tape backend's contract: bit-identity with the reference per-group
scheduler — identical ``KernelTrace`` streams and output buffer bytes —
for any worker count, with or without out-of-core trace spill, and for
kernels whose groups diverge from the pilot schedule (diverted to the
tape/scalar path mid-replay).

Also covered here: the on-disk artifact cache (``codegen_cache_dir``) —
a second process-lifetime hits the ``disk`` tier, and a corrupted
artifact is detected by its content hash and silently recompiled.
"""

from __future__ import annotations

import glob
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend import compile_kernel
from repro.parallel.diff import assert_outputs_equal, assert_traces_equal
from repro.runtime import Memory, launch
from repro.runtime.codegen import clear_codegen_cache
from repro.session import Session, events

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _traced_launch(
    kernel,
    args_spec,
    gsize,
    lsize,
    outs,
    *,
    backend,
    tape_batch=256,
    workers=None,
    sample_groups=None,
    trace_spill_mb=None,
    codegen_cache_dir=None,
):
    """Launch under ``backend`` and return (trace, outputs dict)."""
    mem = Memory()
    args = {}
    bufs = {}
    for name, v in args_spec.items():
        if isinstance(v, np.ndarray):
            bufs[name] = mem.from_array(v, name)
            args[name] = bufs[name]
        else:
            args[name] = v
    for name, (dtype, shape) in outs.items():
        if name not in bufs:
            nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
            bufs[name] = mem.alloc(nbytes, name)
            args[name] = bufs[name]
    overrides = {"exec_backend": backend, "tape_batch": tape_batch}
    if trace_spill_mb is not None:
        overrides["trace_spill_mb"] = trace_spill_mb
    if codegen_cache_dir is not None:
        overrides["codegen_cache_dir"] = codegen_cache_dir
    with Session(**overrides).activate():
        res = launch(
            kernel, gsize, lsize, args, memory=mem,
            collect_trace=True, sample_groups=sample_groups, workers=workers,
        )
    outputs = {
        name: bufs[name].read(np.dtype(dtype), int(np.prod(shape))).reshape(shape)
        for name, (dtype, shape) in outs.items()
    }
    return res.trace, outputs


# ---------------------------------------------------------------------------
# randomized affine kernels: codegen == tape == reference, bit for bit,
# across worker counts and with the trace spilled out of core
# ---------------------------------------------------------------------------

_AFFINE_SOURCE = r"""
__kernel void aff(__global float* out, __global const float* in)
{
    __local float lm[64];
    int li = get_local_id(0);
    int gi = get_global_id(0);
    lm[(CA*li + CB) % 64] = in[(CC*gi + CD*li + CE) % 128];
    barrier(CLK_LOCAL_MEM_FENCE);
    float v = lm[(CF*li + CG) % 64];
    out[gi] = v + lm[li];
}
"""


@settings(max_examples=8, deadline=None)
@given(coeffs=st.tuples(*[st.integers(0, 7) for _ in range(7)]))
def test_codegen_matches_reference_on_random_affine_kernels(coeffs):
    """Random affine access patterns, workers {1,2} x spill {off,on}."""
    defines = dict(zip(("CA", "CB", "CC", "CD", "CE", "CF", "CG"), coeffs))
    kernel = compile_kernel(_AFFINE_SOURCE, defines=defines)
    rng = np.random.default_rng(1234)
    data = rng.standard_normal(128).astype(np.float32)
    spec = {"in": data}
    outs = {"out": (np.float32, (128,))}

    ref_trace, ref_out = _traced_launch(
        kernel, spec, (128,), (16,), outs, backend="reference"
    )
    tape_trace, tape_out = _traced_launch(
        kernel, spec, (128,), (16,), outs, backend="tape"
    )
    assert_traces_equal(ref_trace, tape_trace, f"tape coeffs={coeffs}")
    assert_outputs_equal(ref_out, tape_out, f"tape coeffs={coeffs}")

    for workers in (1, 2):
        for spill_mb in (None, 1):
            ctx = f"coeffs={coeffs} workers={workers} spill={spill_mb}"
            trace, out = _traced_launch(
                kernel, spec, (128,), (16,), outs,
                backend="codegen", workers=workers, trace_spill_mb=spill_mb,
            )
            assert_traces_equal(ref_trace, trace, ctx)
            assert_outputs_equal(ref_out, out, ctx)


# ---------------------------------------------------------------------------
# divergence: groups off the pilot schedule divert to the tape/scalar path
# ---------------------------------------------------------------------------

_EVICT_SOURCE = r"""
__kernel void ev(__global float* out, __global const float* in)
{
    int gi = get_global_id(0);
    int wg = get_group_id(0);
    float acc = in[gi];
    if (wg % 2 == 1) {           /* group-uniform, differs from pilot */
        acc = acc * 2.0f + 1.0f;
    }
    if ((gi / (wg + 1)) % 2 == 0) {   /* mask shape varies per group */
        acc += 3.0f;
    }
    out[gi] = acc;
}
"""


@pytest.mark.parametrize("tape_batch", (1, 4, 256))
def test_divergent_groups_divert_from_generated_module(tape_batch):
    kernel = compile_kernel(_EVICT_SOURCE)
    rng = np.random.default_rng(7)
    data = rng.standard_normal(128).astype(np.float32)
    spec = {"in": data}
    outs = {"out": (np.float32, (128,))}

    ref_trace, ref_out = _traced_launch(
        kernel, spec, (128,), (16,), outs, backend="reference"
    )
    with events.collect() as sink:
        trace, out = _traced_launch(
            kernel, spec, (128,), (16,), outs,
            backend="codegen", tape_batch=tape_batch,
        )
    ctx = f"codegen eviction batch={tape_batch}"
    assert_traces_equal(ref_trace, trace, ctx)
    assert_outputs_equal(ref_out, out, ctx)
    evicts = sink.of_kind("tape_evict")
    assert evicts, "divergent kernel must actually evict groups"
    replays = sink.of_kind("codegen_replay")
    assert replays, "codegen backend must report its replay"
    assert sum(e.payload["evicted"] for e in replays) == len(evicts)


def test_divergence_composes_with_sampling_and_workers():
    kernel = compile_kernel(_EVICT_SOURCE)
    rng = np.random.default_rng(11)
    data = rng.standard_normal(256).astype(np.float32)
    spec = {"in": data}
    outs = {"out": (np.float32, (256,))}
    ref_trace, _ = _traced_launch(
        kernel, spec, (256,), (16,), outs,
        backend="reference", sample_groups=9,
    )
    for workers in (1, 2):
        trace, _ = _traced_launch(
            kernel, spec, (256,), (16,), outs,
            backend="codegen", workers=workers, sample_groups=9,
        )
        assert_traces_equal(ref_trace, trace, f"codegen evict workers={workers}")


# ---------------------------------------------------------------------------
# on-disk artifact cache: disk-tier hits, corruption detected and healed
# ---------------------------------------------------------------------------


def _launch_with_cache(kernel, spec, outs, cache_dir):
    with events.collect() as sink:
        _, out = _traced_launch(
            kernel, spec, (128,), (16,), outs,
            backend="codegen", codegen_cache_dir=cache_dir,
        )
    return sink, out


def test_disk_cache_round_trip_and_corruption_recovery(tmp_path):
    kernel = compile_kernel(_EVICT_SOURCE)
    rng = np.random.default_rng(21)
    data = rng.standard_normal(128).astype(np.float32)
    spec = {"in": data}
    outs = {"out": (np.float32, (128,))}
    cache_dir = str(tmp_path / "cg")
    _, ref_out = _traced_launch(
        kernel, spec, (128,), (16,), outs, backend="reference"
    )

    # cold: a fresh compile writes the sealed artifact
    clear_codegen_cache()
    sink, out = _launch_with_cache(kernel, spec, outs, cache_dir)
    assert sink.of_kind("codegen_compile")
    assert not [
        e for e in sink.of_kind("codegen_cache_hit")
        if e.payload["tier"] in ("memory", "disk")
    ]
    assert_outputs_equal(ref_out, out, "cold compile")
    artifacts = glob.glob(os.path.join(cache_dir, "cg_*.py"))
    assert len(artifacts) == 1
    with open(artifacts[0], encoding="utf-8") as fh:
        assert fh.readline().startswith("# repro-codegen sha256:")

    # simulated new process: the module loads from the disk tier
    clear_codegen_cache()
    sink, out = _launch_with_cache(kernel, spec, outs, cache_dir)
    hits = [
        e for e in sink.of_kind("codegen_cache_hit")
        if e.payload["tier"] == "disk"
    ]
    assert hits and not sink.of_kind("codegen_compile")
    assert_outputs_equal(ref_out, out, "disk hit")

    # same process: the in-memory tier wins over the disk tier
    sink, out = _launch_with_cache(kernel, spec, outs, cache_dir)
    assert [
        e for e in sink.of_kind("codegen_cache_hit")
        if e.payload["tier"] == "memory"
    ]
    assert_outputs_equal(ref_out, out, "memory hit")

    # corrupt the artifact body: the content hash no longer matches, so
    # the loader must silently recompile (and re-seal) instead of
    # executing the damaged module
    with open(artifacts[0], "r+", encoding="utf-8") as fh:
        sealed = fh.read()
        fh.seek(0)
        fh.write(sealed.replace("_replay", "_rep1ay"))
        fh.truncate()
    clear_codegen_cache()
    sink, out = _launch_with_cache(kernel, spec, outs, cache_dir)
    assert sink.of_kind("codegen_compile")
    assert not [
        e for e in sink.of_kind("codegen_cache_hit")
        if e.payload["tier"] == "disk"
    ]
    assert_outputs_equal(ref_out, out, "post-corruption recompile")

    # the recompile rewrote a valid artifact: next cold load hits disk
    clear_codegen_cache()
    sink, out = _launch_with_cache(kernel, spec, outs, cache_dir)
    assert [
        e for e in sink.of_kind("codegen_cache_hit")
        if e.payload["tier"] == "disk"
    ]
    assert_outputs_equal(ref_out, out, "healed disk hit")


def test_publish_failure_leaves_no_temp_file_or_fd(tmp_path, monkeypatch):
    """An interrupted artifact publish (rename fails) must clean up
    after itself: no stray ``.cg_*`` temp file for later runs to trip
    over, no leaked descriptor, and the launch itself still succeeds —
    the disk tier is best-effort."""
    from repro.runtime import codegen as cg

    cache_dir = str(tmp_path / "cg")

    # unit level: the failed publish raises, but the temp file and the
    # fd it was written through are both gone
    fds_before = len(os.listdir("/proc/self/fd"))
    real_replace = os.replace

    def broken_replace(src, dst, *a, **kw):
        if ".cg_" in os.path.basename(src):
            raise OSError("disk full")
        return real_replace(src, dst, *a, **kw)

    monkeypatch.setattr(os, "replace", broken_replace)
    with pytest.raises(OSError):
        cg._publish_artifact(cache_dir, "deadbeef" * 8, "x = 1\n")
    assert os.listdir(cache_dir) == []
    assert len(os.listdir("/proc/self/fd")) == fds_before

    # launch level: the compile succeeds despite the failed publish
    kernel = compile_kernel(_EVICT_SOURCE)
    rng = np.random.default_rng(23)
    data = rng.standard_normal(128).astype(np.float32)
    spec = {"in": data}
    outs = {"out": (np.float32, (128,))}
    _, ref_out = _traced_launch(
        kernel, spec, (128,), (16,), outs, backend="reference"
    )
    clear_codegen_cache()
    sink, out = _launch_with_cache(kernel, spec, outs, cache_dir)
    assert sink.of_kind("codegen_compile")
    assert_outputs_equal(ref_out, out, "publish-failure compile")
    assert os.listdir(cache_dir) == []  # nothing published, nothing leaked

    # once the disk recovers, the next cold compile publishes normally
    monkeypatch.setattr(os, "replace", real_replace)
    clear_codegen_cache()
    _launch_with_cache(kernel, spec, outs, cache_dir)
    assert len(glob.glob(os.path.join(cache_dir, "cg_*.py"))) == 1
    assert not glob.glob(os.path.join(cache_dir, ".cg_*"))


def test_cache_key_separates_trace_and_traceless_modules(tmp_path):
    """collect_trace changes the generated module, so it must change
    the key — a traceless launch must not reuse a tracing artifact."""
    kernel = compile_kernel(_EVICT_SOURCE)
    mem = Memory()
    inb = mem.from_array(np.ones(128, dtype=np.float32), "in")
    outb = mem.alloc(128 * 4, "out")
    cache_dir = str(tmp_path / "cg")
    clear_codegen_cache()
    with Session(
        exec_backend="codegen", codegen_cache_dir=cache_dir
    ).activate():
        launch(kernel, (128,), (16,), {"in": inb, "out": outb},
               memory=mem, collect_trace=True)
        launch(kernel, (128,), (16,), {"in": inb, "out": outb},
               memory=mem, collect_trace=False)
    artifacts = glob.glob(os.path.join(cache_dir, "cg_*.py"))
    assert len(artifacts) == 2
