"""The paper's correctness claim (§VI-A): every application transforms
and still runs correctly — plus Table III index assertions."""

import numpy as np
import pytest

from repro.apps.harness import compile_app, run_app, validate_app
from repro.apps.registry import TABLE_ORDER, get_app, table_apps

ALL_APPS = TABLE_ORDER


@pytest.mark.parametrize("app_id", ALL_APPS)
def test_original_correct(app_id):
    validate_app(get_app(app_id), "with", "test")


@pytest.mark.parametrize("app_id", ALL_APPS)
def test_transformed_correct(app_id):
    """The Grover-transformed kernel computes identical results."""
    validate_app(get_app(app_id), "without", "test")


@pytest.mark.parametrize("app_id", ALL_APPS)
def test_local_memory_actually_removed(app_id):
    app = get_app(app_id)
    kernel, report = compile_app(app, "without")
    assert report is not None
    removed = {r.name for r in report.transformed}
    remaining = {la.name for la in kernel.local_arrays}
    assert removed, f"{app_id}: nothing was transformed"
    assert not (removed & remaining)
    if app.arrays is None:
        assert not remaining, f"{app_id}: local arrays left: {remaining}"


class TestRegistry:
    def test_eleven_table_rows(self):
        assert len(TABLE_ORDER) == 11
        assert len(table_apps()) == 11

    def test_all_suites_represented(self):
        suites = {a.suite for a in table_apps()}
        assert {"AMD APP SDK", "NVIDIA SDK", "Rodinia", "Parboil"} <= suites

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            get_app("XXX-YY")

    def test_every_app_uses_local_memory(self):
        for app in table_apps():
            kernel, _ = compile_app(app, "with")
            has_local = bool(kernel.local_arrays) or any(
                a.type.addrspace.name == "LOCAL"
                for a in kernel.args
                if hasattr(a.type, "addrspace")
            )
            assert has_local, f"{app.id} does not use local memory"

    def test_problem_scales_exist(self):
        for app in table_apps():
            for scale in ("test", "bench"):
                p = app.make_problem(scale)
                assert p.global_size and p.local_size
                assert p.expected


class TestTable3Indices:
    """Symbolic per-app assertions mirroring the paper's Table III."""

    def _report(self, app_id):
        _, report = compile_app(get_app(app_id), "without")
        return report

    def test_nvd_mt_swap(self):
        rep = self._report("NVD-MT")
        (ll,) = rep.record("lm").lls
        assert ll.solution.render() == "lx = ly, ly = lx"

    def test_amd_mt_swap(self):
        rep = self._report("AMD-MT")
        (ll,) = rep.record("lm").lls
        assert ll.solution.render() == "lx = ly, ly = lx"

    def test_amd_ss_group_independent(self):
        """All work-items share the pattern: GL has no group component."""
        rep = self._report("AMD-SS")
        rec = rep.record("lp")
        assert "get_group_id" not in rec.gl_index
        (ll,) = rec.lls
        assert "lx = j" in ll.solution.render()

    def test_nvd_mm_a_solution(self):
        rep = self._report("NVD-MM-A")
        (ll,) = rep.record("As").lls
        assert "lx = k" in ll.solution.render()
        assert "ly = ly" in ll.solution.render()

    def test_nvd_mm_b_solution(self):
        rep = self._report("NVD-MM-B")
        (ll,) = rep.record("Bs").lls
        assert "lx = lx" in ll.solution.render()
        assert "ly = k" in ll.solution.render()

    def test_nbody_tile_solution(self):
        rep = self._report("NVD-NBody")
        (ll,) = rep.record("sh").lls
        assert "lx = j" in ll.solution.render()
        assert "tile" in ll.ngl_index  # loop counter survives in nGL

    def test_rod_sc_solution(self):
        rep = self._report("ROD-SC")
        (ll,) = rep.record("cc").lls
        assert "lx = d" in ll.solution.render()
        # the centre argument must appear in the new global index
        assert "center" in ll.ngl_index

    def test_pab_st_five_systems(self):
        rep = self._report("PAB-ST")
        rec = rep.record("lm")
        assert len(rec.lls) == 5
        sols = {ll.solution.render() for ll in rec.lls}
        assert "lx = lx, ly = ly" in sols            # centre
        assert "lx = lx, ly = ly - 1" in sols        # north
        assert "lx = lx, ly = ly + 1" in sols        # south
        assert "lx = lx - 1, ly = ly" in sols        # west
        assert "lx = lx + 1, ly = ly" in sols        # east

    def test_amd_rg_tap_solution(self):
        rep = self._report("AMD-RG")
        rec = rep.record("lm")
        (ll,) = rec.lls
        # lm[lx + k] with LS lm[lx + R]: writer lx = lx + k - R
        assert "lx = " in ll.solution.render()
        assert "k" in ll.solution.render()

    def test_amd_mm_vector_tile(self):
        rep = self._report("AMD-MM")
        (ll,) = rep.record("Bs").lls
        s = ll.solution.render()
        assert "lx = lx" in s and "ly = k" in s


class TestMultiPassHaloChoice:
    def test_rg_selects_dominating_pair(self):
        """AMD-RG has three (GL,LS) pairs; the main one must be chosen."""
        from repro.core.candidates import find_candidates

        kernel, _ = compile_app(get_app("AMD-RG"), "with")
        (cand,) = find_candidates(kernel)[0]
        assert len(cand.pairs) == 3
        from repro.ir.cfg import dominators, inst_dominates

        doms = dominators(kernel)
        assert all(inst_dominates(doms, cand.ls, ll) for ll in cand.lls)
