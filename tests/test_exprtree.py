"""Tests for index expression trees (Fig. 6, Section IV-B)."""

import pytest

from repro.core.exprtree import (
    ExprNode,
    build_tree,
    find_leaves,
    global_id_dim,
    is_slot_load,
    local_id_dim,
)
from repro.frontend import compile_kernel
from repro.ir.instructions import Call, Cast, GEP, Load, Store
from repro.ir.types import AddressSpace
from repro.ir.values import Argument, Constant


def gl_pointer(src):
    fn = compile_kernel(src)
    for inst in fn.instructions():
        if isinstance(inst, Load) and inst.addrspace == AddressSpace.GLOBAL:
            return fn, inst.ptr
    raise AssertionError("no global load")


MT_LIKE = """
#define S 16
__kernel void t(__global float* out, __global const float* in, int W)
{
    __local float lm[S][S];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    lm[ly][lx] = in[(wx*S + ly)*W + lx];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[lx][ly];
}
"""


class TestTreeConstruction:
    def test_leaves_are_paper_kinds(self):
        fn, ptr = gl_pointer(MT_LIKE)
        tree = build_tree(ptr)
        for leaf in tree.leaves():
            v = leaf.value
            assert (
                isinstance(v, (Call, Constant, Argument))
                or is_slot_load(v)
            ), f"unexpected leaf {v!r}"

    def test_parent_pointers(self):
        fn, ptr = gl_pointer(MT_LIKE)
        tree = build_tree(ptr)
        for node in tree.walk():
            for c in node.children:
                assert c.parent is node

    def test_root_is_gep(self):
        fn, ptr = gl_pointer(MT_LIKE)
        tree = build_tree(ptr)
        assert isinstance(tree.value, GEP)

    def test_internal_nodes_have_instruction_values(self):
        fn, ptr = gl_pointer(MT_LIKE)
        tree = build_tree(ptr)
        from repro.ir.instructions import Instruction

        for node in tree.walk():
            if not node.is_leaf:
                assert isinstance(node.value, Instruction)

    def test_loop_var_is_leaf(self):
        src = """
__kernel void t(__global float* out, __global const float* in, int n)
{
    __local float lm[64];
    int lx = get_local_id(0);
    for (int i = 0; i < n; ++i) {
        lm[lx] = in[i*64 + lx];
        barrier(CLK_LOCAL_MEM_FENCE);
        out[i] = lm[0];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
}
"""
        fn, ptr = gl_pointer(src)
        tree = build_tree(ptr)
        slot_leaves = [n for n in tree.leaves() if is_slot_load(n.value)]
        assert slot_leaves, "the loop counter load must be a leaf"
        assert all(leaf.is_leaf for leaf in slot_leaves)


class TestMarkAndFind:
    def test_mark_upward(self):
        fn, ptr = gl_pointer(MT_LIKE)
        tree = build_tree(ptr)
        leaf = next(iter(tree.leaves()))
        leaf.mark_upward()
        node = leaf
        while node is not None:
            assert node.state
            node = node.parent

    def test_find_local_id_leaves(self):
        fn, ptr = gl_pointer(MT_LIKE)
        tree = build_tree(ptr)
        lids = find_leaves(tree, lambda v: local_id_dim(v) is not None)
        dims = {local_id_dim(n.value) for n in lids}
        assert dims == {0, 1}

    def test_local_and_global_id_helpers(self):
        fn = compile_kernel(MT_LIKE)
        calls = [i for i in fn.instructions() if isinstance(i, Call)]
        by_name = {}
        for c in calls:
            by_name.setdefault(c.callee, c)
        assert local_id_dim(by_name["get_local_id"]) in (0, 1)
        assert global_id_dim(by_name["get_global_id"]) == 0
        assert local_id_dim(by_name["get_group_id"]) is None


class TestRendering:
    def test_render_shows_structure(self):
        fn, ptr = gl_pointer(MT_LIKE)
        text = build_tree(ptr).render()
        assert "in[" in text
        assert "get_group_id(0)" in text
        assert "* 16" in text or "16 *" in text or "* W" in text

    def test_render_constants(self):
        fn, ptr = gl_pointer(MT_LIKE)
        text = build_tree(ptr).render()
        assert "W" in text
