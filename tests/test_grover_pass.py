"""End-to-end tests of the Grover pass (Sections III-IV + VI-A)."""

import numpy as np
import pytest

from repro.core import (
    GroverPass,
    NotReversible,
    PatternMismatch,
    disable_local_memory,
)
from repro.core.dce import has_local_accesses
from repro.frontend import compile_kernel, compile_source
from repro.ir.instructions import Call, Load, Store, is_barrier
from repro.ir.types import AddressSpace

from tests.conftest import (
    MM_SOURCE,
    MT_SOURCE,
    REDUCTION_SOURCE,
    execute_kernel,
)


def local_ops(fn):
    return [
        i
        for i in fn.instructions()
        if isinstance(i, (Load, Store)) and i.addrspace == AddressSpace.LOCAL
    ]


def barriers(fn):
    return [i for i in fn.instructions() if is_barrier(i)]


class TestMatrixTranspose:
    def test_full_removal(self):
        fn = compile_kernel(MT_SOURCE)
        report = disable_local_memory(fn)
        assert report.fully_disabled
        assert not fn.local_arrays
        assert not local_ops(fn)
        assert not barriers(fn)

    def test_report_solution_is_the_swap(self):
        fn = compile_kernel(MT_SOURCE)
        report = disable_local_memory(fn)
        (rec,) = report.records
        (ll,) = rec.lls
        assert ll.solution.render() == "lx = ly, ly = lx"

    def test_execution_equivalence(self):
        n = 64
        rng = np.random.default_rng(1)
        a = rng.random((n, n), dtype=np.float32)
        fn = compile_kernel(MT_SOURCE)
        disable_local_memory(fn)
        _, outs = execute_kernel(
            fn,
            {"in": a, "W": n, "H": n},
            (n, n),
            (16, 16),
            {"out": (np.float32, (n, n))},
        )
        np.testing.assert_array_equal(outs["out"], a.T)

    def test_barriers_kept_on_request(self):
        fn = compile_kernel(MT_SOURCE)
        disable_local_memory(fn, remove_barriers=False)
        assert barriers(fn)


class TestMatrixMulVariants:
    def _run_mm(self, fn, m=32, k=48, n=32):
        rng = np.random.default_rng(2)
        a = rng.random((m, k), dtype=np.float32)
        b = rng.random((k, n), dtype=np.float32)
        _, outs = execute_kernel(
            fn,
            {"A": a, "B": b, "wA": k, "wB": n},
            (n, m),
            (16, 16),
            {"C": (np.float32, (m, n))},
        )
        return outs["C"], a @ b

    @pytest.mark.parametrize(
        "arrays,removed,kept",
        [
            (["As"], "As", "Bs"),
            (["Bs"], "Bs", "As"),
            (None, None, None),
        ],
    )
    def test_selective_removal(self, arrays, removed, kept):
        fn = compile_kernel(MM_SOURCE)
        report = GroverPass(arrays=arrays).run(fn)
        names = {la.name for la in fn.local_arrays}
        if arrays is None:
            assert not names
            assert not barriers(fn)
        else:
            assert removed not in names
            assert kept in names
            assert barriers(fn), "barriers must stay while local memory remains"
        got, want = self._run_mm(fn)
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)

    def test_solution_uses_loop_counter(self):
        fn = compile_kernel(MM_SOURCE)
        report = GroverPass(arrays=["As"]).run(fn)
        (rec,) = report.transformed
        (ll,) = rec.lls
        # writer lx must equal the inner loop counter k
        assert "lx = k" in ll.solution.render()


class TestRejections:
    def test_reduction_pattern_mismatch(self):
        fn = compile_kernel(REDUCTION_SOURCE)
        with pytest.raises(PatternMismatch):
            disable_local_memory(fn)

    def test_reduction_allow_partial_records(self):
        fn = compile_kernel(REDUCTION_SOURCE)
        report = disable_local_memory(fn, allow_partial=True)
        assert not report.transformed
        assert report.rejected
        assert has_local_accesses(fn)  # untouched

    def test_kernel_without_local_memory(self):
        fn = compile_kernel(
            "__kernel void k(__global float* o) { o[get_global_id(0)] = 1.0f; }"
        )
        with pytest.raises(PatternMismatch, match="does not use local memory"):
            disable_local_memory(fn)

    def test_non_invertible_store_rejected(self):
        src = """
__kernel void k(__global float* out, __global const float* in)
{
    __local float lm[64];
    int lx = get_local_id(0);
    lm[lx * 2] = in[get_global_id(0)];   /* strided store: not invertible */
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[lx];
}
"""
        fn = compile_kernel(src)
        with pytest.raises(NotReversible, match="integral|reversible|inconsistent"):
            disable_local_memory(fn)

    def test_coupled_store_rejected(self):
        src = """
__kernel void k(__global float* out, __global const float* in)
{
    __local float lm[64];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    lm[lx + ly] = in[(int)get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[lx];
}
"""
        fn = compile_kernel(src)
        with pytest.raises(NotReversible):
            disable_local_memory(fn)

    def test_non_kernel_rejected(self):
        from repro.core.grover import GroverError

        src = "__kernel void k(__global float* o) { o[0] = 1.0f; }"
        mod = compile_source(src + "\nfloat helper(float x) { return x; }")
        with pytest.raises(GroverError, match="not a kernel"):
            GroverPass().run(mod.functions["helper"])


class TestStructuralProperties:
    def test_verifier_passes_after_rewrite(self):
        from repro.ir.verifier import verify_function

        for src in (MT_SOURCE, MM_SOURCE):
            fn = compile_kernel(src)
            disable_local_memory(fn)
            verify_function(fn)

    def test_ngl_reads_global_memory(self):
        fn = compile_kernel(MT_SOURCE)
        disable_local_memory(fn)
        loads = [i for i in fn.instructions() if isinstance(i, Load)]
        global_loads = [l for l in loads if l.addrspace == AddressSpace.GLOBAL]
        assert global_loads

    def test_staging_code_erased(self):
        fn = compile_kernel(MT_SOURCE)
        before = sum(len(b.instructions) for b in fn.blocks)
        disable_local_memory(fn)
        after = sum(len(b.instructions) for b in fn.blocks)
        assert after < before  # net code shrink for MT (Fig. 1b)

    def test_report_str_contains_key_facts(self):
        fn = compile_kernel(MT_SOURCE)
        report = disable_local_memory(fn)
        text = str(report)
        assert "transpose" in text
        assert "[ok] lm" in text
        assert "GL =" in text

    def test_report_record_lookup(self):
        fn = compile_kernel(MM_SOURCE)
        report = GroverPass().run(fn)
        assert report.record("As").transformed
        with pytest.raises(KeyError):
            report.record("nope")


class TestGidBasedKernels:
    def test_global_id_substitution(self):
        """GL indexed by get_global_id: only its local part is replaced."""
        src = """
__kernel void k(__global float* out, __global const float* in)
{
    __local float lm[16];
    int lx = get_local_id(0);
    lm[lx] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[15 - lx];
}
"""
        fn = compile_kernel(src)
        report = disable_local_memory(fn)
        assert report.fully_disabled
        data = np.arange(64, dtype=np.float32)
        _, outs = execute_kernel(
            fn, {"in": data}, (64,), (16,), {"out": (np.float32, (64,))}
        )
        expected = data.reshape(4, 16)[:, ::-1].ravel()
        np.testing.assert_array_equal(outs["out"], expected)


class TestSharedDataKernels:
    def test_group_independent_staging(self):
        """AMD-SS style: all groups stage the same block (group index 0)."""
        src = """
__kernel void k(__global float* out, __global const float* table)
{
    __local float lt[16];
    int lx = get_local_id(0);
    lt[lx] = table[lx];
    barrier(CLK_LOCAL_MEM_FENCE);
    float acc = 0.0f;
    for (int j = 0; j < 16; ++j)
        acc += lt[j];
    out[get_global_id(0)] = acc;
}
"""
        fn = compile_kernel(src)
        report = disable_local_memory(fn)
        assert report.fully_disabled
        table = np.arange(16, dtype=np.float32)
        _, outs = execute_kernel(
            fn, {"table": table}, (32,), (16,), {"out": (np.float32, (32,))}
        )
        np.testing.assert_allclose(outs["out"], np.full(32, table.sum()))
