"""Unit + property tests for LinExpr (exact linear expressions)."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.core.linexpr import (
    ONE,
    LinExpr,
    lid,
    prod_symbol,
    render_symbol,
    symbol_mentions_lid,
    wid,
)


def lx():
    return LinExpr.symbol(lid(0))


def ly():
    return LinExpr.symbol(lid(1))


class TestAlgebra:
    def test_construction_drops_zeros(self):
        e = LinExpr({lid(0): Fraction(0), ONE: Fraction(3)})
        assert list(e.terms) == [ONE]

    def test_add_sub(self):
        e = lx() + ly() - lx()
        assert e == ly()

    def test_scale(self):
        e = lx().scale(4)
        assert e.coeff(lid(0)) == 4

    def test_mul_by_constant(self):
        e = lx() * LinExpr.constant(3)
        assert e == lx().scale(3)
        e2 = LinExpr.constant(3) * lx()
        assert e2 == lx().scale(3)

    def test_mul_symbols_is_none(self):
        assert lx() * ly() is None

    def test_neg(self):
        assert (-lx()).coeff(lid(0)) == -1

    def test_queries(self):
        e = lx() + LinExpr.constant(5)
        assert not e.is_zero()
        assert not e.is_constant()
        assert e.const() == 5
        assert LinExpr.constant(2).is_constant()
        assert LinExpr.zero().is_zero()

    def test_drop_restrict(self):
        e = lx() + ly() + LinExpr.constant(1)
        assert e.drop([lid(0)]) == ly() + LinExpr.constant(1)
        assert e.restrict([lid(0)]) == lx()

    def test_integrality(self):
        assert lx().is_integral()
        assert not lx().scale(Fraction(1, 2)).is_integral()


class TestRendering:
    def test_simple(self):
        assert lx().render() == "lx"
        assert (lx() + ly()).render() == "lx + ly"
        assert LinExpr.zero().render() == "0"

    def test_coefficients(self):
        assert lx().scale(16).render() == "16*lx"
        assert (-lx()).render() == "-lx"
        assert (ly() - lx()).render() == "-lx + ly" or "ly" in (ly() - lx()).render()

    def test_constant_and_fraction(self):
        e = lx().scale(Fraction(1, 2)) + LinExpr.constant(3)
        assert "1/2*lx" in e.render()
        assert "+ 3" in e.render()

    def test_symbol_names(self):
        assert render_symbol(lid(2)) == "lz"
        assert render_symbol(wid(1)) == "wy"
        assert render_symbol(ONE) == "1"


class TestProductSymbols:
    def test_order_canonical(self):
        a, b = lid(0), wid(1)
        assert prod_symbol(a, b) == prod_symbol(b, a)

    def test_flattening(self):
        p1 = prod_symbol(lid(0), wid(0))
        p2 = prod_symbol(p1, lid(1))
        assert p2[0] == "prod"
        assert len(p2) == 4  # three flattened factors

    def test_mentions_lid(self):
        assert symbol_mentions_lid(lid(1))
        assert symbol_mentions_lid(prod_symbol(lid(0), wid(0)))
        assert not symbol_mentions_lid(wid(0))
        assert not symbol_mentions_lid(prod_symbol(wid(0), wid(1)))


# -- property-based tests ------------------------------------------------------

syms = st.sampled_from([lid(0), lid(1), lid(2), wid(0), wid(1), ONE])
coeffs = st.integers(min_value=-100, max_value=100)


@st.composite
def linexprs(draw):
    n = draw(st.integers(0, 5))
    terms = {}
    for _ in range(n):
        s = draw(syms)
        c = draw(coeffs)
        terms[s] = Fraction(terms.get(s, 0)) + c
    return LinExpr(terms)


@given(linexprs(), linexprs())
def test_addition_commutes(a, b):
    assert a + b == b + a


@given(linexprs(), linexprs(), linexprs())
def test_addition_associates(a, b, c):
    assert (a + b) + c == a + (b + c)


@given(linexprs())
def test_sub_self_is_zero(a):
    assert (a - a).is_zero()


@given(linexprs(), coeffs)
def test_scale_distributes(a, c):
    assert a.scale(c) + a.scale(-c) == LinExpr.zero()


@given(linexprs(), linexprs(), coeffs)
def test_scale_over_sum(a, b, c):
    assert (a + b).scale(c) == a.scale(c) + b.scale(c)


@given(linexprs())
def test_neg_is_scale_minus_one(a):
    assert -a == a.scale(-1)


@given(linexprs())
def test_equality_hash_consistent(a):
    b = LinExpr(dict(a.terms))
    assert a == b and hash(a) == hash(b)
