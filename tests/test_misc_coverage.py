"""Coverage for remaining corners: comma operator, pointers, vector
selects, CLI kernel selection, prod-symbol rendering."""

import numpy as np
import pytest

from repro.core.linexpr import LinExpr, lid, prod_symbol, wid
from tests.conftest import run_scalar_kernel


class TestLoweringCorners:
    def test_comma_operator(self):
        src = """
__kernel void t(__global int* out)
{
    int gid = get_global_id(0);
    int a;
    int b;
    for (a = 0, b = gid; a < 3; ++a)
        b += a;
    out[gid] = b;
}
"""
        _, outs = run_scalar_kernel(src, {}, (8,), (8,), {"out": (np.int32, (8,))})
        np.testing.assert_array_equal(outs["out"], np.arange(8) + 3)

    def test_address_of_and_deref(self):
        src = """
__kernel void t(__global int* out)
{
    int gid = get_global_id(0);
    int x = gid * 2;
    int* p = &x;
    *p = *p + 1;
    out[gid] = x;
}
"""
        _, outs = run_scalar_kernel(src, {}, (8,), (8,), {"out": (np.int32, (8,))})
        np.testing.assert_array_equal(outs["out"], np.arange(8) * 2 + 1)

    def test_array_initializer_list(self):
        src = """
__kernel void t(__global int* out)
{
    int w[4] = {1, 10, 100, 1000};
    int gid = get_global_id(0);
    out[gid] = w[gid % 4];
}
"""
        _, outs = run_scalar_kernel(src, {}, (8,), (8,), {"out": (np.int32, (8,))})
        np.testing.assert_array_equal(
            outs["out"], np.array([1, 10, 100, 1000] * 2)
        )

    def test_pointer_into_global_walk(self):
        src = """
__kernel void t(__global int* out, __global const int* in)
{
    int gid = get_global_id(0);
    __global const int* p = in + gid;
    out[gid] = p[0] + p[1];
}
"""
        data = np.arange(17, dtype=np.int32)
        _, outs = run_scalar_kernel(
            src, {"in": data}, (16,), (16,), {"out": (np.int32, (16,))}
        )
        np.testing.assert_array_equal(outs["out"], data[:-1] + data[1:])

    def test_assignment_as_expression_value(self):
        src = """
__kernel void t(__global int* out)
{
    int gid = get_global_id(0);
    int a;
    int b = (a = gid + 1) * 2;
    out[gid] = a + b;
}
"""
        _, outs = run_scalar_kernel(src, {}, (8,), (8,), {"out": (np.int32, (8,))})
        g = np.arange(8)
        np.testing.assert_array_equal(outs["out"], (g + 1) + (g + 1) * 2)


class TestInterpreterCorners:
    def test_select_on_vectors(self):
        src = """
__kernel void t(__global float* out)
{
    int gid = get_global_id(0);
    float4 a = make_float4(1.0f, 2.0f, 3.0f, 4.0f);
    float4 b = a * 10.0f;
    float4 c = gid % 2 ? a : b;
    vstore4(c, gid, out);
}
"""
        _, outs = run_scalar_kernel(src, {}, (4,), (4,), {"out": (np.float32, (16,))})
        got = outs["out"].reshape(4, 4)
        base = np.array([1, 2, 3, 4], np.float32)
        np.testing.assert_array_equal(got[0], base * 10)
        np.testing.assert_array_equal(got[1], base)

    def test_variable_vector_index(self):
        src = """
__kernel void t(__global float* out)
{
    int gid = get_global_id(0);
    float4 v = make_float4(10.0f, 20.0f, 30.0f, 40.0f);
    int lane = gid % 4;
    float picked;
    if (lane == 0) picked = v.x;
    else if (lane == 1) picked = v.y;
    else if (lane == 2) picked = v.z;
    else picked = v.w;
    out[gid] = picked;
}
"""
        _, outs = run_scalar_kernel(src, {}, (8,), (8,), {"out": (np.float32, (8,))})
        np.testing.assert_array_equal(
            outs["out"], np.array([10, 20, 30, 40] * 2, np.float32)
        )

    def test_unsigned_right_shift(self):
        src = """
__kernel void t(__global uint* out)
{
    uint gid = (uint)get_global_id(0);
    uint big = 0x80000000u + gid;
    out[gid] = big >> 4;
}
"""
        _, outs = run_scalar_kernel(src, {}, (8,), (8,), {"out": (np.uint32, (8,))})
        expected = ((0x80000000 + np.arange(8, dtype=np.uint64)) >> 4).astype(
            np.uint32
        )
        np.testing.assert_array_equal(outs["out"], expected)

    def test_signed_right_shift_arithmetic(self):
        src = """
__kernel void t(__global int* out)
{
    int gid = get_global_id(0);
    int v = -64 + gid;
    out[gid] = v >> 2;
}
"""
        _, outs = run_scalar_kernel(src, {}, (8,), (8,), {"out": (np.int32, (8,))})
        np.testing.assert_array_equal(outs["out"], (-64 + np.arange(8)) >> 2)


class TestCLICorners:
    TWO_KERNELS = """
__kernel void first(__global float* out, __global const float* in)
{
    __local float lm[8];
    int lx = get_local_id(0);
    lm[lx] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[7 - lx];
}
__kernel void second(__global float* out)
{
    out[get_global_id(0)] = 0.0f;
}
"""

    def test_kernel_selection(self, tmp_path, capsys):
        from repro.cli import main

        f = tmp_path / "two.cl"
        f.write_text(self.TWO_KERNELS)
        rc = main([str(f), "--kernel", "first"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "first" in out

    def test_kernel_without_local_memory_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        f = tmp_path / "two.cl"
        f.write_text(self.TWO_KERNELS)
        rc = main([str(f), "--kernel", "second"])
        assert rc == 2


class TestLinExprProdRendering:
    def test_prod_renders_with_star(self):
        p = prod_symbol(lid(1), wid(0))
        e = LinExpr.symbol(p, 3)
        assert "*" in e.render()
        assert "ly" in e.render() and "wx" in e.render()

    def test_prod_equality_regardless_of_order(self):
        assert LinExpr.symbol(prod_symbol(lid(0), wid(1))) == LinExpr.symbol(
            prod_symbol(wid(1), lid(0))
        )
