"""Determinism of the fuzzer: the same ``--seed`` must reproduce the
same campaign — byte-identical kernel sources and identical verdicts —
in another process and at any worker count.

This is what makes a fuzz finding *actionable*: ``case 143 of seed 7``
names the same kernel on every machine, the corpus promoted from a seed
is stable, and the CI fuzz job is re-runnable bit-for-bit.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys

import pytest

from repro.fuzz import FuzzOptions, generate_case, run_fuzz

SEED, COUNT = 7, 12

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _subprocess_env() -> dict:
    env = dict(os.environ)
    src = os.path.join(_ROOT, "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, _ROOT, env.get("PYTHONPATH", "")) if p
    )
    return env


def _fingerprint(results) -> str:
    """A digest of everything a campaign decided (wall times excluded)."""
    blob = json.dumps(
        [
            {
                "source": r.source,
                "exec": r.outcome.exec_outcome,
                "analyzer": r.outcome.analyzer,
                "cats": list(r.outcome.deferral_categories),
                "grover": r.outcome.grover,
                "evictions": r.outcome.evictions,
                "cycles": r.outcome.cycles,
                "mismatches": [m.check for m in r.outcome.mismatches],
            }
            for r in results
        ],
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def test_sources_identical_across_processes(tmp_path):
    """Generation is a pure function of (seed, index): a fresh python
    process produces byte-identical kernel sources."""
    here = [generate_case(SEED, i).source() for i in range(COUNT)]
    prog = (
        "import sys\n"
        "from repro.fuzz import generate_case\n"
        f"for i in range({COUNT}):\n"
        f"    sys.stdout.write(generate_case({SEED}, i).source())\n"
        "    sys.stdout.write('\\x00')\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", prog], capture_output=True, text=True,
        check=True, env=_subprocess_env(), cwd=_ROOT,
    )
    there = proc.stdout.split("\x00")[:-1]
    assert there == here


def test_verdicts_identical_across_processes():
    fp_here = _fingerprint(run_fuzz(FuzzOptions(seed=SEED, count=COUNT)).results)
    prog = (
        "from repro.fuzz import FuzzOptions, run_fuzz\n"
        "from tests.test_fuzz_determinism import _fingerprint\n"
        f"run = run_fuzz(FuzzOptions(seed={SEED}, count={COUNT}))\n"
        "print(_fingerprint(run.results))\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", prog], capture_output=True, text=True,
        check=True, env=_subprocess_env(), cwd=_ROOT,
    )
    assert proc.stdout.strip() == fp_here


@pytest.mark.parametrize("workers", [1, 4])
def test_verdicts_independent_of_worker_count(workers):
    run = run_fuzz(FuzzOptions(seed=SEED, count=COUNT, workers=workers))
    assert run.workers >= 1
    assert _fingerprint(run.results) == _EXPECTED_FP


#: computed once at import by the serial path; both parametrizations
#: (and the cross-process test) must land on the same digest
_EXPECTED_FP = _fingerprint(
    run_fuzz(FuzzOptions(seed=SEED, count=COUNT, workers=1)).results
)


def test_case_seed_derivation_is_stable():
    """Pin the seed derivation itself: changing it would silently rename
    every historical finding and orphan the committed corpus."""
    case = generate_case(7, 0)
    assert case.case_seed == generate_case(7, 0).case_seed
    assert generate_case(7, 1).case_seed != case.case_seed
    assert generate_case(8, 0).case_seed != case.case_seed
