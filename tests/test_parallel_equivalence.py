"""Differential suite: sharded launches must be bit-identical to serial.

For every paper application, in both the original and the
Grover-transformed variant, a launch sharded over 2..4 worker processes
must reproduce the serial run exactly: the same ``KernelTrace`` event
stream (spaces, buffer ids, offsets, lanes, phases, instruction ids),
the same output buffer bytes, and the same ``CPUModel``/``GPUModel``
cycle counts with memoization on and off.

The kernel is compiled *once* per case and launched through both paths:
transformed kernels draw fresh instruction ids at every compile, so
event-stream identity is only defined per compiled kernel object.
"""

from __future__ import annotations

import pytest

from repro.apps.harness import compile_app, execute_app
from repro.apps.registry import TABLE_ORDER, get_app
from repro.parallel.diff import (
    assert_cycles_equal,
    assert_outputs_equal,
    assert_traces_equal,
)
from repro.perf import devices
from repro.perf.cpumodel import CPUModel
from repro.perf.gpumodel import GPUModel

WORKER_COUNTS = (2, 3, 4)

CASES = [(app_id, variant) for app_id in TABLE_ORDER for variant in ("with", "without")]


@pytest.mark.parametrize("app_id,variant", CASES, ids=[f"{a}-{v}" for a, v in CASES])
def test_sharded_launch_bit_identical(app_id, variant):
    app = get_app(app_id)
    kernel, report = compile_app(app, variant)
    serial = execute_app(
        app, kernel, variant=variant, scale="test", collect_trace=True, report=report
    )
    assert serial.trace is not None

    for workers in WORKER_COUNTS:
        parallel = execute_app(
            app, kernel, variant=variant, scale="test",
            collect_trace=True, workers=workers, report=report,
        )
        ctx = f"{app_id}[{variant}] workers={workers}"
        assert_traces_equal(serial.trace, parallel.trace, ctx)
        assert_outputs_equal(serial.outputs, parallel.outputs, ctx)
        for memoize in (False, True):
            assert_cycles_equal(
                CPUModel(devices.SNB, memoize=memoize).time_kernel(serial.trace),
                CPUModel(devices.SNB, memoize=memoize).time_kernel(parallel.trace),
                f"{ctx} CPU memoize={memoize}",
            )
            assert_cycles_equal(
                GPUModel(devices.FERMI, memoize=memoize).time_kernel(serial.trace),
                GPUModel(devices.FERMI, memoize=memoize).time_kernel(parallel.trace),
                f"{ctx} GPU memoize={memoize}",
            )


@pytest.mark.parametrize("sample_groups", (1, 3, 7))
def test_sharded_sampled_launch_bit_identical(sample_groups):
    """Sampling composes with sharding: shards split the sampled picks."""
    app = get_app("NVD-MT")
    kernel, _ = compile_app(app, "with")
    serial = execute_app(
        app, kernel, scale="bench", collect_trace=True, sample_groups=sample_groups
    )
    for workers in WORKER_COUNTS:
        parallel = execute_app(
            app, kernel, scale="bench", collect_trace=True,
            sample_groups=sample_groups, workers=workers,
        )
        ctx = f"sample_groups={sample_groups} workers={workers}"
        assert_traces_equal(serial.trace, parallel.trace, ctx)
        assert parallel.trace.sampled_groups == serial.trace.sampled_groups


def test_workers_beyond_group_count_degrade_gracefully():
    """More workers than groups: shards shrink, result stays identical."""
    app = get_app("NVD-MT")
    kernel, _ = compile_app(app, "with")
    serial = execute_app(app, kernel, scale="test", collect_trace=True)
    parallel = execute_app(
        app, kernel, scale="test", collect_trace=True, workers=64
    )
    assert_traces_equal(serial.trace, parallel.trace, "workers=64")
    assert_outputs_equal(serial.outputs, parallel.outputs, "workers=64")


def test_parallel_launch_advances_buffer_ids_like_serial():
    """After a launch, the parent Memory's id counter sits where a serial
    launch would have left it — later launches on the same Memory then
    allocate identical buffer ids in either mode."""
    from repro.runtime import Memory

    app = get_app("NVD-MT")
    kernel, _ = compile_app(app, "with")
    problem = app.make_problem("test")

    def next_id_after(workers):
        import numpy as np

        from repro.runtime import launch

        mem = Memory()
        args = {}
        for name, value in problem.inputs.items():
            args[name] = (
                mem.from_array(value, name) if isinstance(value, np.ndarray) else value
            )
        for name, expected in problem.expected.items():
            if name not in args:
                args[name] = mem.alloc(expected.nbytes, name)
        launch(
            kernel, problem.global_size, problem.local_size, args,
            memory=mem, collect_trace=True, workers=workers,
        )
        return mem._next_id

    assert next_id_after(1) == next_id_after(3)
