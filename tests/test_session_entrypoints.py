"""Session entry points produce bit-identical results to the legacy path.

The multi-layer refactor's safety net: every module-level function is
now a shim over :func:`repro.session.current_session`, and an explicit
:class:`Session` must reproduce the legacy results exactly — compiled
IR, launch traces, model cycles and experiment-grid floats.
"""

from __future__ import annotations

import numpy as np

from repro.apps.registry import get_app
from repro.frontend import compile_kernel, compile_source
from repro.ir.printer import print_function
from repro.session import Session, current_session
from tests.conftest import MM_SOURCE, MT_SOURCE

# ---------------------------------------------------------------------------
# compile path
# ---------------------------------------------------------------------------


def test_session_compile_matches_legacy_shim():
    legacy = compile_kernel(MT_SOURCE)
    s = Session(env={})
    via_session = s.compile_kernel(MT_SOURCE)
    assert print_function(via_session) == print_function(legacy)


def test_shim_resolves_to_active_session():
    s = Session(env={})
    with s.activate():
        assert current_session() is s
        compile_source(MT_SOURCE)
    assert len(s._compile_cache) == 1
    with s.activate():
        # legacy introspection name still works and follows the session
        from repro.frontend import compile as compile_mod

        assert compile_mod._compile_cache is s._compile_cache


def test_sessions_have_isolated_compile_caches():
    a, b = Session(env={}), Session(env={})
    a.compile_kernel(MT_SOURCE)
    assert len(a._compile_cache) == 1
    assert len(b._compile_cache) == 0


def test_compile_cache_size_is_configurable():
    s = Session(env={}, compile_cache_size=1)
    s.compile_kernel(MT_SOURCE)
    s.compile_kernel(MM_SOURCE)
    assert len(s._compile_cache) == 1  # LRU pruned to the configured size


def test_cache_hits_hand_out_private_copies():
    s = Session(env={})
    k1 = s.compile_kernel(MT_SOURCE)
    k2 = s.compile_kernel(MT_SOURCE)
    assert k1 is not k2
    assert print_function(k1) == print_function(k2)


# ---------------------------------------------------------------------------
# transform + runtime paths
# ---------------------------------------------------------------------------


def test_session_grover_matches_legacy():
    from repro.core.grover import disable_local_memory

    legacy_k = compile_kernel(MT_SOURCE)
    legacy_report = disable_local_memory(legacy_k)

    s = Session(env={})
    sess_k = s.compile_kernel(MT_SOURCE)
    sess_report = s.disable_local_memory(sess_k)
    assert str(sess_report) == str(legacy_report)
    assert print_function(sess_k) == print_function(legacy_k)


def test_session_launch_trace_bit_identical():
    from repro.parallel.diff import assert_traces_equal
    from repro.runtime import Memory, launch

    kernel = compile_kernel(MT_SOURCE)
    a = np.arange(32 * 32, dtype=np.float32)

    def legacy_run():
        mem = Memory()
        args = {
            "out": mem.alloc(32 * 32 * 4, "out"),
            "in": mem.from_array(a, "in"),
            "W": 32, "H": 32,
        }
        return launch(
            kernel, (32, 32), (16, 16), args, memory=mem, collect_trace=True
        )

    def session_run():
        mem = Memory()
        args = {
            "out": mem.alloc(32 * 32 * 4, "out"),
            "in": mem.from_array(a, "in"),
            "W": 32, "H": 32,
        }
        return Session(env={}).launch(
            kernel, (32, 32), (16, 16), args, memory=mem, collect_trace=True
        )

    assert_traces_equal(legacy_run().trace, session_run().trace, "session launch")


def test_session_execute_app_matches_legacy():
    """Same compiled kernel, legacy vs session executor: traces are
    bit-identical (inst ids included) and outputs byte-equal."""
    from repro.apps.harness import compile_app, execute_app
    from repro.parallel.diff import assert_traces_equal

    app = get_app("NVD-MT")
    kernel, _ = compile_app(app, "without")
    legacy = execute_app(
        app, kernel, variant="without", scale="test", collect_trace=True
    )
    via_session = Session(env={}).execute_app(
        app, kernel, variant="without", scale="test", collect_trace=True
    )
    assert_traces_equal(legacy.trace, via_session.trace, "session execute_app")
    for name in legacy.outputs:
        np.testing.assert_array_equal(
            legacy.outputs[name], via_session.outputs[name]
        )


def test_session_run_app_outputs_match_legacy():
    """End-to-end run_app (fresh compile each side): numerical outputs
    are byte-equal even though instruction ids differ per compile."""
    from repro.apps.harness import run_app

    app = get_app("NVD-MT")
    legacy = run_app(app, "without", scale="test")
    via_session = Session(env={}).run_app(app, "without", scale="test")
    assert set(legacy.outputs) == set(via_session.outputs)
    for name in legacy.outputs:
        np.testing.assert_array_equal(
            legacy.outputs[name], via_session.outputs[name]
        )


# ---------------------------------------------------------------------------
# model + experiment paths
# ---------------------------------------------------------------------------


def test_session_config_reaches_the_models():
    from repro.perf.fastcache import FastCacheHierarchy, make_hierarchy
    from repro.perf.cache import CacheHierarchy

    specs = [(32, 8, 64, "L1")]
    with Session(env={}, cache_backend="reference").activate():
        assert isinstance(make_hierarchy(specs), CacheHierarchy)
    with Session(env={}, cache_backend="fast").activate():
        assert isinstance(make_hierarchy(specs), FastCacheHierarchy)


def test_session_matrix_matches_direct_normalized_perf():
    from repro.experiments import clear_caches, normalized_perf

    clear_caches()
    direct = normalized_perf("NVD-MT", "SNB", "test")
    result = Session(env={}).run_matrix(
        apps=["NVD-MT"], devices=["SNB"], workers=1, scale="test"
    )
    assert result.values["SNB"]["NVD-MT"] == direct  # exact float equality
