"""Dynamic trace replay: the analyzer's fallback arbiter.

Kernels whose indices the static analysis cannot decide (guards,
argument-dependent offsets) are replayed from the interpreter's
``GroupTrace``; the replay is exact for the traced input and promotes
statically-undecided pairs to decided when the trace covers every group.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import analyze_kernel, analyze_source, replay_trace
from repro.frontend import compile_kernel
from repro.runtime import Memory, launch


def _trace(src, gsize, lsize, scalars=None, nbytes=None):
    kernel = compile_kernel(src)
    mem = Memory()
    n = nbytes or int(np.prod(gsize)) * 16
    args = {}
    for a in kernel.args:
        if a.type.__class__.__name__ == "PointerType":
            buf = mem.alloc(n, a.name)
            buf.data[:] = (np.arange(n) % 251).astype(np.uint8)
            args[a.name] = buf
        else:
            args[a.name] = (scalars or {})[a.name]
    res = launch(kernel, gsize, lsize, args, memory=mem, collect_trace=True)
    return kernel, res.trace


class TestReplayFindings:
    def test_guarded_ww_race_found_dynamically(self):
        # every lane stores lm[lx]; lane 0 additionally stores lm[1],
        # colliding with lane 1 — the guard hides it from the statics
        src = """
__kernel void k(__global float* out, __global const float* in) {
    __local float lm[64];
    int lx = get_local_id(0);
    lm[lx] = in[get_global_id(0)];
    if (lx == 0) lm[1] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[lx];
}
"""
        kernel, trace = _trace(src, (64,), (64,))
        report = replay_trace(trace, kernel=kernel)
        ww = [f for f in report.findings if f.kind == "race-ww"]
        assert ww and all(f.decided_by == "dynamic" for f in ww)
        assert ww[0].obj == "lm"
        assert ww[0].group_id is not None

    def test_rw_race_in_same_phase(self):
        src = """
__kernel void k(__global int* out) {
    __local int lm[64];
    int lx = get_local_id(0);
    lm[lx] = lx;
    out[get_global_id(0)] = lm[63 - lx];
}
"""
        kernel, trace = _trace(src, (64,), (64,), nbytes=64 * 4)
        report = replay_trace(trace, kernel=kernel)
        assert any(f.kind == "race-rw" for f in report.findings)

    def test_uninit_local_read_flagged(self):
        # odd slots are never written; reading them breaks reversibility
        src = """
__kernel void k(__global float* out, __global const float* in) {
    __local float lm[128];
    int lx = get_local_id(0);
    lm[2*lx] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[lx];
}
"""
        kernel, trace = _trace(src, (64,), (64,))
        report = replay_trace(trace, kernel=kernel)
        assert any(f.kind == "uninit-read" for f in report.findings)

    def test_clean_kernel_has_no_dynamic_findings(self):
        src = """
__kernel void k(__global float* out, __global const float* in) {
    __local float lm[64];
    int lx = get_local_id(0);
    lm[lx] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[63 - lx];
}
"""
        kernel, trace = _trace(src, (256,), (64,))
        report = replay_trace(trace, kernel=kernel)
        assert not report.findings

    def test_barrier_separates_writer_and_reader(self):
        # same byte touched by different lanes in *different* phases:
        # the replay must reset its phase maps at the barrier
        src = """
__kernel void k(__global int* out) {
    __local int lm[64];
    int lx = get_local_id(0);
    lm[lx] = lx;
    barrier(CLK_LOCAL_MEM_FENCE);
    int v = lm[(lx + 1) % 64];
    barrier(CLK_LOCAL_MEM_FENCE);
    lm[(lx + 7) % 64] = v;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[lx];
}
"""
        kernel, trace = _trace(src, (64,), (64,), nbytes=64 * 4)
        report = replay_trace(trace, kernel=kernel)
        assert not [f for f in report.findings if f.kind.startswith("race")]


class TestApplyReplay:
    UNDECIDABLE = """
__kernel void k(__global float* out, __global const float* in, int H) {
    __local float lm[128];
    int lx = get_local_id(0);
    lm[lx] = in[get_global_id(0)];
    lm[lx + H] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[lx];
}
"""

    def test_full_trace_promotes_undecided_pairs(self):
        report = analyze_source(
            self.UNDECIDABLE,
            global_size=(256,),
            local_size=(64,),
            scalar_args={"H": 64},
        )
        assert report.replayed
        assert report.pairs_undecided == 0
        assert report.pairs_dynamic > 0
        assert report.verdict == "clean"

    def test_static_only_stays_undecided(self):
        report = analyze_source(
            self.UNDECIDABLE,
            global_size=(256,),
            local_size=(64,),
            scalar_args={"H": 64},
            execute=False,
        )
        assert not report.replayed
        assert report.pairs_undecided > 0
        assert report.verdict == "undecided"

    def test_colliding_argument_value_is_caught(self):
        # H = 0 makes the two stores collide on every byte... same lane.
        # H = 1 shifts by one lane: neighbouring lanes collide.
        report = analyze_source(
            self.UNDECIDABLE,
            global_size=(256,),
            local_size=(64,),
            scalar_args={"H": 1},
        )
        assert report.verdict == "race"
        assert any(f.decided_by == "dynamic" for f in report.races)

    def test_sampled_trace_keeps_pairs_undecided(self):
        kernel = compile_kernel(self.UNDECIDABLE)
        mem = Memory()
        n = 256 * 16
        args = {}
        for a in kernel.args:
            if a.name == "H":
                args[a.name] = 64
            else:
                buf = mem.alloc(n, a.name)
                args[a.name] = buf
        res = launch(
            kernel, (256,), (64,), args, memory=mem,
            collect_trace=True, sample_groups=2,
        )
        from repro.analysis import apply_replay
        from repro.analysis.races import analyze_races_static

        report = analyze_kernel(kernel, (64,))
        before = report.pairs_undecided
        assert before > 0
        apply_replay(report, res.trace, kernel)
        assert not report.replayed
        assert report.pairs_undecided == before  # sampling is not proof
