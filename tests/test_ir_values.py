"""Unit tests for values, constants and use-def chains."""

import pytest

from repro.ir.instructions import BinOp, Opcode
from repro.ir.types import ArrayType, BOOL, FLOAT, I8, I32, U8
from repro.ir.values import Argument, Constant, LocalArray, const_float, const_int


class TestConstants:
    def test_int_wrapping_signed(self):
        assert Constant(I8, 200).value == 200 - 256
        assert Constant(I8, -129).value == 127
        assert Constant(I32, 2**31).value == -(2**31)

    def test_int_wrapping_unsigned(self):
        assert Constant(U8, 300).value == 44
        assert Constant(U8, -1).value == 255

    def test_float_conversion(self):
        assert Constant(FLOAT, 3).value == 3.0
        assert isinstance(Constant(FLOAT, 3).value, float)

    def test_bool(self):
        assert Constant(BOOL, 1).value is True

    def test_equality_and_hash(self):
        assert Constant(I32, 5) == Constant(I32, 5)
        assert Constant(I32, 5) != Constant(I32, 6)
        assert Constant(I32, 5) != Constant(FLOAT, 5)
        assert hash(Constant(I32, 5)) == hash(Constant(I32, 5))

    def test_non_scalar_rejected(self):
        with pytest.raises(TypeError):
            Constant(ArrayType(FLOAT, 4), 0)

    def test_helpers(self):
        assert const_int(7).type == I32
        assert const_float(1.5).type == FLOAT


class TestUseDefChains:
    def test_uses_recorded(self):
        a = Constant(I32, 1)
        b = Constant(I32, 2)
        inst = BinOp(Opcode.ADD, a, b)
        assert (inst, 0) in a.uses
        assert (inst, 1) in b.uses

    def test_set_operand_updates_uses(self):
        a, b, c = Constant(I32, 1), Constant(I32, 2), Constant(I32, 3)
        inst = BinOp(Opcode.ADD, a, b)
        inst.set_operand(0, c)
        assert (inst, 0) not in a.uses
        assert (inst, 0) in c.uses
        assert inst.operands[0] is c

    def test_replace_all_uses_with(self):
        a, b, new = Constant(I32, 1), Constant(I32, 2), Constant(I32, 9)
        i1 = BinOp(Opcode.ADD, a, b)
        i2 = BinOp(Opcode.MUL, a, a)
        a.replace_all_uses_with(new)
        assert i1.operands[0] is new
        assert i2.operands[0] is new and i2.operands[1] is new
        assert not a.uses

    def test_replace_with_self_is_noop(self):
        a, b = Constant(I32, 1), Constant(I32, 2)
        inst = BinOp(Opcode.ADD, a, b)
        a.replace_all_uses_with(a)
        assert inst.operands[0] is a

    def test_drop_all_references(self):
        a, b = Constant(I32, 1), Constant(I32, 2)
        inst = BinOp(Opcode.ADD, a, b)
        inst.drop_all_references()
        assert not a.uses and not b.uses
        assert inst.operands == []

    def test_users_property(self):
        a = Constant(I32, 1)
        i1 = BinOp(Opcode.ADD, a, a)
        assert a.users == [i1, i1]  # one entry per operand slot


class TestArgumentsAndLocalArrays:
    def test_argument_metadata(self):
        arg = Argument(I32, "n", 2)
        assert arg.name == "n" and arg.index == 2

    def test_local_array_type_and_size(self):
        la = LocalArray(ArrayType(ArrayType(FLOAT, 16), 16), "lm")
        assert la.nbytes == 1024
        assert la.type.addrspace.name == "LOCAL"
        assert la.array_type.dims() == (16, 16)
