"""Structured deferral reporting of the static race analyzer.

Historically a statically-undecidable access pair only bumped
``pairs_undecided`` — a bare skip.  The fuzzer oracle needs to tell
"deferred because the index is non-affine" apart from "clean", so every
deferral now surfaces as a structured :class:`repro.analysis.Deferral`
(kernel, instruction pair, object, category, reason), is rendered in the
report, and is emitted as a schema-validated ``analysis_deferral`` event.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import DEFERRAL_CATEGORIES, analyze_kernel, analyze_source
from repro.analysis.races import analyze_races_static
from repro.frontend import compile_kernel
from repro.runtime import Memory, launch
from repro.session import events

NON_AFFINE = r"""
__kernel void na(__global float* out, __global const float* in)
{
    __local float lm[64];
    int li = get_local_id(0);
    lm[(li * li) % 64] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[li];
}
"""

GUARDED = r"""
__kernel void gd(__global float* out, __global const float* in)
{
    __local float lm[64];
    int li = get_local_id(0);
    lm[li] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    if (li < 32)
        lm[li] = lm[li] + 1.0f;
    out[get_global_id(0)] = lm[li];
}
"""

AFFINE_CLEAN = r"""
__kernel void ok(__global float* out, __global const float* in)
{
    __local float lm[64];
    int li = get_local_id(0);
    lm[li] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[63 - li];
}
"""


def test_non_affine_pair_surfaces_structured_deferral():
    kernel = compile_kernel(NON_AFFINE)
    report = analyze_kernel(kernel, (64,))
    assert report.verdict == "undecided"
    assert report.pairs_undecided > 0
    assert len(report.deferrals) == report.pairs_undecided
    d = report.deferrals[0]
    assert d.kernel == "na"
    assert d.category == "non-affine"
    assert d.obj == "lm"
    assert d.space == "local"
    assert d.a_inst >= 0 and d.b_inst is not None
    assert "non-affine" in d.why
    # the category set is drawn from the declared vocabulary
    for d in report.deferrals:
        assert d.category in DEFERRAL_CATEGORIES
    # rendered, not silently dropped
    assert "deferred [non-affine]" in str(report)


def test_guarded_access_defers_with_guarded_category():
    kernel = compile_kernel(GUARDED)
    report = analyze_kernel(kernel, (64,))
    cats = {d.category for d in report.deferrals}
    assert "guarded" in cats
    assert report.deferrals_on("lm")


def test_no_geometry_defers_with_category():
    kernel = compile_kernel(NON_AFFINE)
    report = analyze_races_static(kernel, None)
    cats = {d.category for d in report.deferrals}
    # the non-affine term dominates; a second all-affine kernel exercises
    # the no-geometry category
    assert cats <= set(DEFERRAL_CATEGORIES)
    clean = compile_kernel(AFFINE_CLEAN)
    report2 = analyze_races_static(clean, None)
    assert {d.category for d in report2.deferrals} == {"no-geometry"}


def test_clean_kernel_has_no_deferrals():
    kernel = compile_kernel(AFFINE_CLEAN)
    report = analyze_kernel(kernel, (64,))
    assert report.verdict == "clean"
    assert report.deferrals == [] and report.deferrals_resolved == []


def test_full_replay_moves_deferrals_to_resolved():
    kernel = compile_kernel(NON_AFFINE)
    mem = Memory()
    buf_in = mem.from_array(
        np.arange(128, dtype=np.float32), "in"
    )
    buf_out = mem.alloc(128 * 4, "out")
    res = launch(
        kernel, (128,), (64,), {"in": buf_in, "out": buf_out},
        memory=mem, collect_trace=True,
    )
    report = analyze_kernel(kernel, (64,), res.trace)
    assert report.replayed
    assert report.pairs_undecided == 0
    assert report.deferrals == []
    assert report.deferrals_resolved  # static-time reasons kept
    assert report.deferrals_on("lm")
    assert "non-affine" in report.deferral_categories


def test_analysis_deferral_events_validate():
    kernel = compile_kernel(NON_AFFINE)
    with events.collect() as sink:
        analyze_kernel(kernel, (64,))
    deferral_events = sink.of_kind("analysis_deferral")
    assert deferral_events
    for e in deferral_events:
        events.validate_event(e.kind, e.payload)
        assert e.payload["category"] in DEFERRAL_CATEGORIES
        assert e.payload["kernel"] == "na"
        assert e.payload["resolved"] is False


def test_analyze_source_deferrals_roundtrip():
    report = analyze_source(
        NON_AFFINE, global_size=(128,), local_size=(64,), execute=False
    )
    assert report.deferrals and report.verdict == "undecided"
