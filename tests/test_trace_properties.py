"""Property tests on the trace machinery and cache simulator."""

from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.types import AddressSpace
from repro.perf.cache import SetAssocCache, collapse_consecutive
from repro.runtime.trace import GroupTrace, MemEvent


# -- reference LRU model --------------------------------------------------------


class RefLRU:
    """Dictionary-based reference implementation of a set-assoc LRU cache."""

    def __init__(self, n_sets, assoc):
        self.n_sets = n_sets
        self.assoc = assoc
        self.sets = [OrderedDict() for _ in range(n_sets)]

    def access(self, line):
        s = self.sets[line % self.n_sets]
        if line in s:
            s.move_to_end(line)
            return True
        s[line] = True
        if len(s) > self.assoc:
            s.popitem(last=False)
        return False


@settings(max_examples=40, deadline=None)
@given(
    lines=st.lists(st.integers(0, 255), min_size=0, max_size=200),
    assoc=st.sampled_from([1, 2, 4, 8]),
)
def test_cache_matches_reference_lru(lines, assoc):
    size_kb = 16 * assoc * 64 / 1024  # 16 sets
    cache = SetAssocCache(size_kb, assoc, 64)
    ref = RefLRU(cache.n_sets, assoc)
    for line in lines:
        assert cache.access(line) == ref.access(line)


@settings(max_examples=40, deadline=None)
@given(lines=st.lists(st.integers(0, 50), min_size=0, max_size=100))
def test_collapse_preserves_transitions(lines):
    arr = np.array(lines, dtype=np.int64)
    out = collapse_consecutive(arr)
    # no adjacent duplicates remain
    assert not (out[1:] == out[:-1]).any() if len(out) > 1 else True
    # the sequence of distinct runs is preserved
    runs = [lines[0]] if lines else []
    for v in lines[1:]:
        if v != runs[-1]:
            runs.append(v)
    np.testing.assert_array_equal(out, np.array(runs, dtype=np.int64))


# -- serialized stream properties -------------------------------------------------


def make_event(space, phase, lanes, offsets, store=False):
    return MemEvent(
        space=space,
        is_store=store,
        buffer_id=1,
        offsets=np.asarray(offsets, dtype=np.int64),
        lanes=np.asarray(lanes, dtype=np.int64),
        elem_size=4,
        phase=phase,
        inst_id=0,
    )


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_serialization_is_phase_then_lane_ordered(data):
    n_lanes = 4
    n_events = data.draw(st.integers(1, 8))
    events = []
    for ei in range(n_events):
        phase = data.draw(st.integers(0, 2))
        active = sorted(
            data.draw(
                st.sets(st.integers(0, n_lanes - 1), min_size=1, max_size=n_lanes)
            )
        )
        offsets = [data.draw(st.integers(0, 1000)) * 4 for _ in active]
        events.append(make_event(AddressSpace.GLOBAL, phase, active, offsets))
    # stamp insertion order inside the offsets' low bits is not possible;
    # instead verify ordering keys are monotone
    gt = GroupTrace((0,), n_lanes, events=events)
    stream = gt.serialized((AddressSpace.GLOBAL,))
    assert len(stream) == sum(e.count for e in events)

    # reconstruct (phase, lane) per output element independently
    tagged = []
    for order, e in enumerate(events):
        for lane, off in zip(e.lanes, e.offsets):
            tagged.append((e.phase, int(lane), order, int(off)))
    tagged.sort(key=lambda t: (t[0], t[1], t[2]))
    np.testing.assert_array_equal(
        stream.offsets, np.array([t[3] for t in tagged], dtype=np.int64)
    )


def test_serialization_filters_spaces():
    events = [
        make_event(AddressSpace.GLOBAL, 0, [0], [0]),
        make_event(AddressSpace.LOCAL, 0, [0], [4]),
        make_event(AddressSpace.PRIVATE, 0, [0], [8]),
    ]
    gt = GroupTrace((0,), 1, events=events)
    assert len(gt.serialized((AddressSpace.GLOBAL,))) == 1
    assert len(gt.serialized((AddressSpace.GLOBAL, AddressSpace.LOCAL))) == 2


def test_line_ids_disambiguate_buffers():
    e1 = make_event(AddressSpace.GLOBAL, 0, [0], [0])
    e2 = make_event(AddressSpace.GLOBAL, 0, [0], [0])
    e2.buffer_id = 2
    gt = GroupTrace((0,), 1, events=[e1, e2])
    stream = gt.serialized((AddressSpace.GLOBAL,))
    lines = stream.line_ids(64)
    assert lines[0] != lines[1]


def test_empty_stream():
    gt = GroupTrace((0,), 4)
    stream = gt.serialized((AddressSpace.GLOBAL,))
    assert len(stream) == 0
    assert len(stream.line_ids(64)) == 0
