"""The layered Session configuration: registry, precedence, validation.

Covers the ISSUE-3 config contract: every ``REPRO_*`` variable is
declared once in :mod:`repro.session.config`, unknown ``REPRO_`` names
fail loudly at Session construction, and resolution follows

    registry default < config file/dict < REPRO_* env var < Session kwarg
"""

from __future__ import annotations

import json

import pytest

from repro.session import ConfigError, Session
from repro.session.config import (
    ENV_REGISTRY,
    REGISTRY,
    coerce_value,
    describe_registry,
    load_config_file,
    validate_environ,
)

# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


def test_registry_covers_every_historical_env_var():
    assert set(ENV_REGISTRY) == {
        "REPRO_CACHE_BACKEND",
        "REPRO_PERF_MEMO",
        "REPRO_WORKERS",
        "REPRO_COMPILE_CACHE_SIZE",
        "REPRO_UPDATE_GOLDEN",
        "REPRO_ANALYZE",
        "REPRO_TRACE_OUT",
        "REPRO_EXEC_BACKEND",
        "REPRO_TAPE_BATCH",
        "REPRO_TRACE_SPILL_MB",
        "REPRO_SEARCH_BEAM",
        "REPRO_SEARCH_DEPTH",
        "REPRO_SEARCH_SAMPLE_GROUPS",
        "REPRO_SEARCH_DEVICE",
        "REPRO_CODEGEN_CACHE_DIR",
        "REPRO_TUNE_MODEL",
        "REPRO_TUNE_THRESHOLD",
        "REPRO_POOL_PERSIST",
        "REPRO_POOL_SHM",
    }
    # name <-> env spelling is a bijection
    assert len(REGISTRY) == len(ENV_REGISTRY)
    for var in REGISTRY.values():
        assert var.env == "REPRO_" + var.name.upper()
        assert var.doc  # every knob is documented


def test_describe_registry_mentions_every_var():
    text = describe_registry()
    for var in REGISTRY.values():
        assert var.name in text
        assert var.env in text


def test_unknown_repro_env_var_rejected_at_construction():
    with pytest.raises(ConfigError, match="REPRO_PREF_MEMO"):
        Session(env={"REPRO_PREF_MEMO": "0"})
    # non-REPRO names are not our business
    validate_environ({"PATH": "/bin", "REPROBE": "x"})


def test_config_error_is_a_value_error():
    assert issubclass(ConfigError, ValueError)


# ---------------------------------------------------------------------------
# precedence
# ---------------------------------------------------------------------------


def test_default_layer():
    s = Session(env={})
    assert s.get("cache_backend") == "fast"
    assert s.get("perf_memo") is True
    assert s.get("workers") == 1
    assert s.get("compile_cache_size") == 32


def test_config_dict_beats_default():
    s = Session(config={"workers": 4}, env={})
    assert s.get("workers") == 4


def test_env_beats_config_dict():
    s = Session(config={"workers": 4}, env={"REPRO_WORKERS": "2"})
    assert s.get("workers") == 2


def test_kwarg_beats_env():
    s = Session(
        config={"workers": 4}, env={"REPRO_WORKERS": "2"}, workers=8
    )
    assert s.get("workers") == 8


def test_config_file_loads_below_config_dict(tmp_path):
    path = tmp_path / "cfg.json"
    path.write_text(json.dumps({"workers": 3, "cache_backend": "reference"}))
    s = Session(config={"workers": 5}, config_file=str(path), env={})
    assert s.get("workers") == 5  # dict updates the file layer
    assert s.get("cache_backend") == "reference"


def test_env_values_are_read_live():
    env = {}
    s = Session(env=env)
    assert s.get("workers") == 1
    env["REPRO_WORKERS"] = "6"  # mutated after construction (monkeypatch)
    assert s.get("workers") == 6


def test_empty_env_string_unsets_str_and_bool_but_not_int():
    s = Session(env={"REPRO_CACHE_BACKEND": "", "REPRO_PERF_MEMO": ""})
    assert s.get("cache_backend") == "fast"
    assert s.get("perf_memo") is True
    s2 = Session(env={"REPRO_WORKERS": ""})
    with pytest.raises(ValueError, match="REPRO_WORKERS"):
        s2.get("workers")


def test_as_dict_resolves_every_registered_name():
    s = Session(env={})
    d = s.as_dict()
    assert set(d) == set(REGISTRY)
    assert d["cache_backend"] == "fast"


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("raw", ["0", "-2", "1.5", "zero", ""])
def test_bad_int_env_values(raw):
    s = Session(env={"REPRO_WORKERS": raw})
    with pytest.raises(ValueError, match="REPRO_WORKERS"):
        s.get("workers")


def test_bad_bool_env_value():
    s = Session(env={"REPRO_PERF_MEMO": "maybe"})
    with pytest.raises(ConfigError, match="REPRO_PERF_MEMO"):
        s.get("perf_memo")


@pytest.mark.parametrize("word,value", [
    ("1", True), ("true", True), ("YES", True), ("on", True),
    ("0", False), ("False", False), ("no", False), ("OFF", False),
])
def test_bool_env_words(word, value):
    s = Session(env={"REPRO_PERF_MEMO": word})
    assert s.get("perf_memo") is value


def test_choices_enforced_everywhere():
    with pytest.raises(ValueError, match="REPRO_CACHE_BACKEND"):
        Session(env={"REPRO_CACHE_BACKEND": "bogus"}).get("cache_backend")
    with pytest.raises(ConfigError, match="cache_backend"):
        Session(config={"cache_backend": "bogus"}, env={})
    with pytest.raises(ConfigError, match="cache_backend"):
        Session(env={}, cache_backend="bogus")


def test_unknown_config_key_rejected():
    with pytest.raises(ConfigError, match="unknown config key"):
        Session(config={"worker": 4}, env={})
    with pytest.raises(ConfigError, match="unknown config key"):
        Session(env={}, wrokers=4)
    with pytest.raises(ConfigError, match="unknown config key"):
        coerce_value("nope", 1, source="test")


def test_wrong_python_types_rejected():
    with pytest.raises(ConfigError, match="workers must be an int"):
        Session(config={"workers": "4"}, env={})
    with pytest.raises(ConfigError, match="workers must be an int"):
        Session(env={}, workers=True)
    with pytest.raises(ConfigError, match="perf_memo must be a bool"):
        Session(env={}, perf_memo=1)


def test_config_file_errors(tmp_path):
    with pytest.raises(ConfigError, match="cannot read config file"):
        load_config_file(str(tmp_path / "missing.json"))
    bad = tmp_path / "bad.json"
    bad.write_text("[1, 2]")
    with pytest.raises(ConfigError, match="JSON object"):
        load_config_file(str(bad))
    notjson = tmp_path / "notjson.json"
    notjson.write_text("{nope")
    with pytest.raises(ConfigError, match="cannot read config file"):
        load_config_file(str(notjson))


# ---------------------------------------------------------------------------
# set_config / activation
# ---------------------------------------------------------------------------


def test_set_config_returns_previous_and_stays_below_env():
    s = Session(env={"REPRO_CACHE_BACKEND": "reference"})
    prev = s.set_config("cache_backend", "fast")
    assert prev == "fast"  # registry default (env is a separate layer)
    # env still wins over the config layer set_config writes
    assert s.get("cache_backend") == "reference"


def test_activation_scopes_config_lookups():
    from repro.perf.fastcache import cache_backend
    from repro.session import current_session

    outer = current_session()
    s = Session(env={}, cache_backend="reference")
    assert cache_backend() != "reference" or outer.get("cache_backend") == "reference"
    with s.activate():
        assert current_session() is s
        assert cache_backend() == "reference"
    assert current_session() is not s


def test_get_unknown_name_raises():
    with pytest.raises(ConfigError, match="unknown config key"):
        Session(env={}).get("nope")


# ---------------------------------------------------------------------------
# ISSUE-4 env-coercion boundaries: every rejection is a ConfigError that
# names the offending variable (not a bare ValueError/TypeError)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("raw", ["0", "-7", "four", "2.5", "1e3"])
def test_workers_env_rejection_is_config_error_naming_variable(raw):
    s = Session(env={"REPRO_WORKERS": raw})
    with pytest.raises(
        ConfigError, match=r"\$REPRO_WORKERS must be a positive integer"
    ):
        s.get("workers")


def test_workers_env_boundary_one_is_accepted():
    assert Session(env={"REPRO_WORKERS": "1"}).get("workers") == 1


@pytest.mark.parametrize("env_name", ["REPRO_TAPE_BATCH", "REPRO_TRACE_SPILL_MB"])
@pytest.mark.parametrize("raw", ["0", "-2", "1.5", "many", ""])
def test_batch_and_spill_env_rejected_at_construction(env_name, raw):
    """The eagerly-checked ints fail at Session() itself, not at lookup —
    a bad ``REPRO_TAPE_BATCH`` must not survive until a launch reads it."""
    with pytest.raises(ConfigError, match=env_name):
        Session(env={env_name: raw})


@pytest.mark.parametrize("env_name,name,value", [
    ("REPRO_TAPE_BATCH", "tape_batch", 64),
    ("REPRO_TRACE_SPILL_MB", "trace_spill_mb", 1),
])
def test_batch_and_spill_env_accepted_values(env_name, name, value):
    assert Session(env={env_name: str(value)}).get(name) == value


def test_codegen_backend_and_cache_dir_are_registered():
    s = Session(env={
        "REPRO_EXEC_BACKEND": "codegen",
        "REPRO_CODEGEN_CACHE_DIR": "/tmp/cg",
    })
    assert s.get("exec_backend") == "codegen"
    assert s.get("codegen_cache_dir") == "/tmp/cg"
    assert Session(env={}).get("codegen_cache_dir") is None


def test_analyze_var_defaults_off_and_parses_bool_words():
    assert Session(env={}).get("analyze") is False
    assert Session(env={"REPRO_ANALYZE": "1"}).get("analyze") is True
    assert Session(env={"REPRO_ANALYZE": "off"}).get("analyze") is False
    with pytest.raises(ConfigError, match="REPRO_ANALYZE"):
        Session(env={"REPRO_ANALYZE": "maybe"}).get("analyze")
