"""Tests for the static local-memory benefit predictor (paper future work)."""

import pytest

from repro.apps.registry import get_app
from repro.core import PatternMismatch
from repro.perf.devices import MIC, NEHALEM, SNB
from repro.predict import analyze_kernel, predict
from repro.predict.analyzer import (
    _conflict_risk,
    weighted_barrier_count,
    weighted_inst_count,
)
from repro.frontend import compile_kernel

from tests.conftest import MM_SOURCE, MT_SOURCE, REDUCTION_SOURCE


class TestStaticWeights:
    def test_loop_weighting(self):
        flat = compile_kernel(
            "__kernel void k(__global float* o) { o[get_global_id(0)] = 1.0f; }"
        )
        looped = compile_kernel(
            "__kernel void k(__global float* o) {"
            " float s = 0.0f;"
            " for (int i = 0; i < 100; ++i) s += 1.0f;"
            " o[get_global_id(0)] = s; }"
        )
        assert weighted_inst_count(looped) > weighted_inst_count(flat)

    def test_barrier_weight_scales_with_loop_depth(self):
        outside = compile_kernel(
            "__kernel void k(__global float* o) {"
            " __local float lm[16]; lm[get_local_id(0)] = o[get_global_id(0)];"
            " barrier(CLK_LOCAL_MEM_FENCE); o[get_global_id(0)] = lm[0]; }"
        )
        inside = compile_kernel(
            "__kernel void k(__global float* o, int n) {"
            " __local float lm[16]; float s = 0.0f;"
            " for (int t = 0; t < n; ++t) {"
            "  lm[get_local_id(0)] = o[get_global_id(0)];"
            "  barrier(CLK_LOCAL_MEM_FENCE); s += lm[0];"
            "  barrier(CLK_LOCAL_MEM_FENCE); }"
            " o[get_global_id(0)] = s; }"
        )
        assert weighted_barrier_count(inside) > weighted_barrier_count(outside)


class TestConflictRisk:
    def test_power_of_two_stride_conflicts(self):
        # 4096-byte stride on SNB L1 (64 sets): all lines in one set
        r = _conflict_risk(4096, 16, SNB)
        assert r.conflicts
        assert r.distinct_sets == 1

    def test_small_stride_benign(self):
        assert not _conflict_risk(4, 16, SNB).conflicts
        assert not _conflict_risk(64, 16, SNB).conflicts

    def test_coprime_stride_benign(self):
        # 65-line stride cycles through all 64 sets
        r = _conflict_risk(65 * 64, 16, SNB)
        assert not r.conflicts

    def test_few_iterations_fit_associativity(self):
        r = _conflict_risk(4096, 8, SNB)  # 8 lines in one 8-way set: fits
        assert not r.conflicts

    def test_describe(self):
        assert "thrash" in _conflict_risk(4096, 16, SNB).describe()
        assert "benign" in _conflict_risk(4, 16, SNB).describe()


class TestVerdicts:
    MM_ARGS = {"wA": 256, "wB": 1024}

    def test_mt_predicted_gain(self):
        p = predict(MT_SOURCE, SNB, arg_values={"W": 1024, "H": 1024})
        assert p.verdict == "gain"
        assert p.score > 0
        assert any("staging" in r or "barrier" in r for r in p.reasons)

    def test_mm_b_predicted_loss_with_conflict_diagnosis(self):
        p = predict(MM_SOURCE, SNB, arrays=["Bs"], arg_values=self.MM_ARGS)
        assert p.verdict == "loss"
        assert any("conflict" in r for r in p.reasons)
        assert any(f.conflict for f in p.features)

    def test_mm_a_predicted_similar(self):
        p = predict(MM_SOURCE, SNB, arrays=["As"], arg_values=self.MM_ARGS)
        assert p.verdict == "similar"

    def test_mm_b_benign_without_pathological_stride(self):
        """With a non-power-of-two row length the column access spreads
        over the cache sets and the predicted loss disappears."""
        p = predict(
            MM_SOURCE, SNB, arrays=["Bs"], arg_values={"wA": 256, "wB": 1040}
        )
        assert not any(f.conflict for f in p.features)
        assert p.verdict != "loss"

    def test_unknown_strides_are_not_conflicts(self):
        # without arg_values the symbolic stride cannot be resolved and
        # the predictor stays conservative (no phantom conflicts)
        p = predict(MM_SOURCE, SNB, arrays=["Bs"])
        assert not any(f.conflict for f in p.features)

    def test_reduction_raises(self):
        with pytest.raises(PatternMismatch):
            predict(REDUCTION_SOURCE, SNB)

    def test_prediction_str(self):
        p = predict(MT_SOURCE, SNB)
        text = str(p)
        assert "SNB" in text and "gain" in text


class TestAgainstTraceModel:
    """The predictor must agree with the trace-driven model on the
    decided benchmark cases (the validation the paper proposes)."""

    CASES = {
        # app id -> expected verdict on SNB from the trace model
        "NVD-MT": "gain",
        "NVD-MM-B": "loss",
        "AMD-MM": "loss",
        "AMD-SS": None,   # borderline: accept gain or similar
    }

    @pytest.mark.parametrize("app_id", sorted(CASES))
    def test_agreement(self, app_id):
        app = get_app(app_id)
        problem = app.make_problem("bench")
        arg_values = {
            k: v for k, v in problem.inputs.items() if isinstance(v, int)
        }
        p = predict(
            app.source,
            SNB,
            kernel_name=app.kernel_name,
            defines=app.defines,
            arrays=app.arrays,
            arg_values=arg_values,
        )
        expected = self.CASES[app_id]
        if expected is None:
            assert p.verdict in ("gain", "similar")
        else:
            assert p.verdict == expected, f"{app_id}: {p}"


class TestAnalyzeKernel:
    def test_returns_both_versions(self):
        orig, trans, report = analyze_kernel(MT_SOURCE)
        assert orig.local_arrays and not trans.local_arrays
        assert report.fully_disabled
