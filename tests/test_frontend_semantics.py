"""Semantic tests: compile mini-kernels and check C semantics by execution."""

import numpy as np
import pytest

from tests.conftest import run_scalar_kernel


def run1d(body, inputs=None, n=16, out_dtype=np.int32, params=""):
    """Run a 1-work-group kernel writing out[gid]; returns the out array."""
    ctype = {
        np.int32: "int",
        np.uint32: "uint",
        np.float32: "float",
        np.int64: "long",
    }[out_dtype]
    extra = f", {params}" if params else ""
    src = f"""
__kernel void t(__global {ctype}* out{extra})
{{
    int gid = get_global_id(0);
    {body}
}}
"""
    _, outs = run_scalar_kernel(
        src, inputs or {}, (n,), (n,), {"out": (out_dtype, (n,))}
    )
    return outs["out"]


class TestIntegerSemantics:
    def test_truncating_division(self):
        out = run1d("out[gid] = (gid - 8) / 3;")
        expected = np.array([int((g - 8) / 3) for g in range(16)], np.int32)
        np.testing.assert_array_equal(out, expected)

    def test_c_remainder_sign(self):
        out = run1d("out[gid] = (gid - 8) % 3;")
        import math

        expected = np.array(
            [(g - 8) - int((g - 8) / 3) * 3 for g in range(16)], np.int32
        )
        np.testing.assert_array_equal(out, expected)

    def test_shifts(self):
        out = run1d("out[gid] = (1 << gid) >> 2;")
        expected = np.array([(1 << g) >> 2 for g in range(16)], np.int32)
        np.testing.assert_array_equal(out, expected)

    def test_bitwise_ops(self):
        out = run1d("out[gid] = (gid & 5) | (gid ^ 3);")
        expected = np.array([(g & 5) | (g ^ 3) for g in range(16)], np.int32)
        np.testing.assert_array_equal(out, expected)

    def test_unsigned_comparison(self):
        # (uint)(gid - 8) is huge for gid < 8
        out = run1d("uint u = (uint)(gid - 8); out[gid] = u > 100u ? 1 : 0;")
        expected = np.array([1 if g < 8 else 0 for g in range(16)], np.int32)
        np.testing.assert_array_equal(out, expected)

    def test_integer_overflow_wraps(self):
        out = run1d("int big = 2147483647; out[gid] = big + gid;")
        expected = np.array(
            [(2**31 - 1 + g + 2**31) % 2**32 - 2**31 for g in range(16)], np.int32
        )
        np.testing.assert_array_equal(out, expected)

    def test_increment_decrement(self):
        out = run1d("int x = gid; x++; ++x; x--; out[gid] = x;")
        np.testing.assert_array_equal(out, np.arange(16, dtype=np.int32) + 1)

    def test_compound_assignment(self):
        out = run1d("int x = gid; x += 3; x *= 2; x -= 1; x /= 3; out[gid] = x;")
        expected = np.array([int(((g + 3) * 2 - 1) / 3) for g in range(16)], np.int32)
        np.testing.assert_array_equal(out, expected)

    def test_logical_ops(self):
        out = run1d("out[gid] = (gid > 3 && gid < 10) || gid == 0 ? 1 : 0;")
        expected = np.array(
            [1 if (3 < g < 10) or g == 0 else 0 for g in range(16)], np.int32
        )
        np.testing.assert_array_equal(out, expected)

    def test_negation_and_not(self):
        out = run1d("out[gid] = -gid + (!gid) + (~gid);")
        expected = np.array([-g + (0 if g else 1) + (~g) for g in range(16)], np.int32)
        np.testing.assert_array_equal(out, expected)


class TestFloatSemantics:
    def test_arithmetic(self):
        out = run1d(
            "float x = (float)gid; out[gid] = (x * 2.0f + 1.0f) / 4.0f - 0.5f;",
            out_dtype=np.float32,
        )
        expected = ((np.arange(16, dtype=np.float32) * 2 + 1) / 4 - 0.5).astype(
            np.float32
        )
        np.testing.assert_allclose(out, expected, rtol=1e-6)

    def test_math_builtins(self):
        out = run1d(
            "float x = (float)(gid + 1); out[gid] = sqrt(x) + fabs(-x) + fmax(x, 2.0f);",
            out_dtype=np.float32,
        )
        x = np.arange(1, 17, dtype=np.float32)
        np.testing.assert_allclose(out, np.sqrt(x) + x + np.maximum(x, 2), rtol=1e-6)

    def test_rsqrt_and_mad(self):
        out = run1d(
            "float x = (float)(gid + 1); out[gid] = mad(x, 2.0f, rsqrt(x));",
            out_dtype=np.float32,
        )
        x = np.arange(1, 17, dtype=np.float32)
        np.testing.assert_allclose(out, x * 2 + 1 / np.sqrt(x), rtol=1e-5)

    def test_float_int_conversions(self):
        out = run1d("float x = 2.75f * (float)gid; out[gid] = (int)x;")
        expected = np.trunc(2.75 * np.arange(16)).astype(np.int32)
        np.testing.assert_array_equal(out, expected)

    def test_clamp_and_min(self):
        out = run1d(
            "out[gid] = clamp((float)gid, 3.0f, 10.0f) + fmin((float)gid, 2.0f);",
            out_dtype=np.float32,
        )
        g = np.arange(16, dtype=np.float32)
        np.testing.assert_allclose(out, np.clip(g, 3, 10) + np.minimum(g, 2))


class TestControlFlowSemantics:
    def test_for_accumulate(self):
        out = run1d("int s = 0; for (int i = 0; i <= gid; ++i) s += i; out[gid] = s;")
        expected = np.array([g * (g + 1) // 2 for g in range(16)], np.int32)
        np.testing.assert_array_equal(out, expected)

    def test_break_continue(self):
        out = run1d(
            "int s = 0; for (int i = 0; i < 100; ++i) {"
            " if (i == gid) break; if (i % 2 == 0) continue; s += i; }"
            " out[gid] = s;"
        )
        expected = []
        for g in range(16):
            s = 0
            for i in range(100):
                if i == g:
                    break
                if i % 2 == 0:
                    continue
                s += i
            expected.append(s)
        np.testing.assert_array_equal(out, np.array(expected, np.int32))

    def test_while_loop(self):
        out = run1d("int x = gid; int c = 0; while (x > 0) { x = x / 2; c++; } out[gid] = c;")
        expected = np.array([g.bit_length() for g in range(16)], np.int32)
        np.testing.assert_array_equal(out, expected)

    def test_do_while_runs_once(self):
        out = run1d("int c = 0; do { c++; } while (c < gid); out[gid] = c;")
        expected = np.array([max(1, g) for g in range(16)], np.int32)
        np.testing.assert_array_equal(out, expected)

    def test_divergent_branches(self):
        out = run1d(
            "if (gid % 3 == 0) out[gid] = 100 + gid;"
            " else if (gid % 3 == 1) out[gid] = 200 + gid;"
            " else out[gid] = 300 + gid;"
        )
        expected = np.array([(g % 3 + 1) * 100 + g for g in range(16)], np.int32)
        np.testing.assert_array_equal(out, expected)

    def test_divergent_loop_trip_counts(self):
        out = run1d("int s = 0; for (int i = 0; i < gid; ++i) s += gid; out[gid] = s;")
        expected = np.array([g * g for g in range(16)], np.int32)
        np.testing.assert_array_equal(out, expected)

    def test_early_return(self):
        out = run1d("out[gid] = 1; if (gid < 8) return; out[gid] = 2;")
        expected = np.array([1] * 8 + [2] * 8, np.int32)
        np.testing.assert_array_equal(out, expected)

    def test_ternary(self):
        out = run1d("out[gid] = gid % 2 ? gid * 10 : gid;")
        expected = np.array([g * 10 if g % 2 else g for g in range(16)], np.int32)
        np.testing.assert_array_equal(out, expected)


class TestVectorSemantics:
    def test_vector_roundtrip_and_arith(self):
        src = """
__kernel void t(__global float* out, __global const float* in)
{
    int gid = get_global_id(0);
    float4 a = vload4(gid, in);
    float4 b = a * 2.0f;
    float4 c = b + a;
    vstore4(c, gid, out);
}
"""
        data = np.arange(64, dtype=np.float32)
        _, outs = run_scalar_kernel(
            src, {"in": data}, (16,), (16,), {"out": (np.float32, (64,))}
        )
        np.testing.assert_allclose(outs["out"], data * 3)

    def test_make_and_members(self):
        src = """
__kernel void t(__global float* out)
{
    int gid = get_global_id(0);
    float4 v = make_float4((float)gid, 1.0f, 2.0f, 3.0f);
    out[gid] = v.x + v.y * v.z + v.w;
}
"""
        _, outs = run_scalar_kernel(src, {}, (8,), (8,), {"out": (np.float32, (8,))})
        np.testing.assert_allclose(outs["out"], np.arange(8) + 1 * 2 + 3)

    def test_dot(self):
        src = """
__kernel void t(__global float* out)
{
    int gid = get_global_id(0);
    float4 v = make_float4(1.0f, 2.0f, 3.0f, (float)gid);
    out[gid] = dot(v, v);
}
"""
        _, outs = run_scalar_kernel(src, {}, (8,), (8,), {"out": (np.float32, (8,))})
        np.testing.assert_allclose(outs["out"], 14 + np.arange(8) ** 2)


class TestMultiKernelModules:
    def test_two_kernels_in_one_source(self):
        src = """
__kernel void a(__global int* out) { out[get_global_id(0)] = 1; }
__kernel void b(__global int* out) { out[get_global_id(0)] = 2; }
"""
        from repro.frontend import compile_source

        mod = compile_source(src)
        assert {f.name for f in mod.kernels()} == {"a", "b"}
