"""The structured event bus: schema, sinks, fork safety, pipeline wiring.

Every layer of the pipeline emits typed events; these tests assert the
events actually flow (compile, passes, Grover, launch, models, matrix),
that the JSONL trace validates against :data:`EVENT_SCHEMA`, and that
the pool-fallback path is observable (event when a sink listens, a
:class:`PoolFallbackWarning` when nobody does).
"""

from __future__ import annotations

import json
import os
import warnings

import numpy as np
import pytest

from repro.session import Session, collect, validate_jsonl
from repro.session.events import (
    EVENT_SCHEMA,
    EventBus,
    EventSchemaError,
    JsonlSink,
    bus_active,
    emit,
    validate_event,
)
from tests.conftest import MT_SOURCE, REDUCTION_SOURCE, run_scalar_kernel

# ---------------------------------------------------------------------------
# bus mechanics
# ---------------------------------------------------------------------------


def test_emit_is_noop_without_sinks():
    assert not bus_active()
    # unknown kind + bad payload: still silent when nobody listens
    emit("not_a_kind", nonsense=object())


def test_schema_validated_when_active():
    with collect():
        with pytest.raises(EventSchemaError, match="unknown event kind"):
            emit("not_a_kind")
        with pytest.raises(EventSchemaError, match="missing payload fields"):
            emit("compile_start", module="m")
        with pytest.raises(EventSchemaError, match="unexpected payload fields"):
            emit("compile_start", module="m", source_sha1="x", extra=1)
        with pytest.raises(EventSchemaError, match="expected str"):
            emit("compile_start", module=3, source_sha1="x")


def test_bools_are_not_ints_in_schema():
    with pytest.raises(EventSchemaError):
        validate_event(
            "launch_sharded", {"kernel": "k", "shards": True, "workers": 1}
        )


def test_seq_is_monotonic_per_bus():
    with collect() as sink:
        emit("grover_start", kernel="a")
        emit("grover_start", kernel="b")
    seqs = [e.seq for e in sink.events]
    assert seqs == sorted(seqs) and len(set(seqs)) == 2


def test_forked_child_bus_goes_inactive():
    b = EventBus()
    b.attach(lambda e: None)
    assert b.active
    b._pid = os.getpid() + 1  # simulate being a forked child
    assert not b.active
    b.emit("grover_start", kernel="k")  # must be a silent no-op


def test_collector_helpers():
    with collect() as sink:
        emit("grover_start", kernel="k")
        emit("grover_end", kernel="k", transformed=1, rejected=0, wall_ms=0.5)
    assert sink.kinds() == ["grover_start", "grover_end"]
    assert len(sink.of_kind("grover_end")) == 1


# ---------------------------------------------------------------------------
# pipeline wiring: compile -> passes -> grover -> launch -> model
# ---------------------------------------------------------------------------


def test_compile_emits_cache_events():
    s = Session(env={})
    with collect() as sink:
        s.compile_kernel(MT_SOURCE)
        s.compile_kernel(MT_SOURCE)
    kinds = sink.kinds()
    assert kinds.count("compile_cache_miss") == 1
    assert kinds.count("compile_cache_hit") == 1
    assert kinds.count("compile_end") == 1  # the hit never recompiles
    applied = sink.of_kind("pass_applied")
    assert applied, "pass pipeline emitted nothing"
    for e in applied:
        assert e.payload["pass"] in {
            "promote-single-store-slots", "fold-constants", "cse", "licm",
            "normalize-gep", "dce",
        }
        # normalize-gep may grow the IR (canonicalised index arithmetic);
        # the counts just have to be sane, not monotone
        assert e.payload["insts_before"] > 0 and e.payload["insts_after"] > 0
        assert e.payload["rewrites"] >= 0 and e.payload["wall_ms"] >= 0


def test_grover_events_for_transform_and_rejection():
    from repro.core.grover import GroverError, GroverPass
    from repro.frontend import compile_kernel

    mt = compile_kernel(MT_SOURCE)
    with collect() as sink:
        GroverPass().run(mt)
    assert sink.kinds()[0] == "grover_start"
    assert sink.kinds()[-1] == "grover_end"
    done = sink.of_kind("grover_end")[0].payload
    assert done["transformed"] == 1 and done["rejected"] == 0

    red = compile_kernel(REDUCTION_SOURCE)
    with collect() as sink:
        with pytest.raises(GroverError):
            GroverPass().run(red)
    rejected = [
        e for e in sink.of_kind("grover_candidate")
        if e.payload["status"] == "rejected"
    ]
    assert rejected and rejected[0].payload["reason"]


def test_launch_emits_start_groups_end():
    with collect() as sink:
        run_scalar_kernel(
            MT_SOURCE,
            {"in": np.arange(32 * 32, dtype=np.float32), "W": 32, "H": 32},
            (32, 32), (16, 16),
            {"out": (np.float32, (32 * 32,))},
        )
    start = sink.of_kind("launch_start")
    end = sink.of_kind("launch_end")
    assert len(start) == 1 and len(end) == 1
    assert start[0].payload["total_groups"] == 4
    assert len(sink.of_kind("group_executed")) == 4
    assert end[0].payload["work_items"] == 32 * 32


def test_model_events():
    from repro.perf import devices
    from repro.perf.cpumodel import CPUModel
    from repro.runtime import Memory, launch
    from repro.frontend import compile_kernel

    kernel = compile_kernel(MT_SOURCE)
    mem = Memory()
    args = {
        "out": mem.alloc(32 * 32 * 4, "out"),
        "in": mem.from_array(np.arange(32 * 32, dtype=np.float32), "in"),
        "W": 32, "H": 32,
    }
    res = launch(kernel, (32, 32), (16, 16), args, memory=mem, collect_trace=True)
    model = CPUModel(devices.SNB, memoize=True)
    with collect() as sink:
        model.time_kernel(res.trace)
    timed = sink.of_kind("model_kernel_timed")
    assert len(timed) == 1
    assert timed[0].payload["device"] == devices.SNB.name
    assert timed[0].payload["cycles"] > 0
    # the transpose groups share one fingerprint -> 3 memo hits
    assert len(sink.of_kind("model_memo_hit")) == 3


# ---------------------------------------------------------------------------
# JSONL sink + validation
# ---------------------------------------------------------------------------


def test_session_trace_out_writes_valid_jsonl(tmp_path):
    path = tmp_path / "events.jsonl"
    s = Session(env={}, trace_out=str(path))
    try:
        s.compile_kernel(MT_SOURCE)
    finally:
        s.close()
    n = validate_jsonl(str(path))
    assert n > 0
    kinds = [json.loads(line)["kind"] for line in path.read_text().splitlines()]
    assert "compile_start" in kinds and "compile_end" in kinds
    # close() detached the sink: later emits do not reopen the file
    emit("grover_start", kernel="k")
    assert validate_jsonl(str(path)) == n


def test_validate_jsonl_rejects_bad_lines(tmp_path):
    def write(lines):
        p = tmp_path / "bad.jsonl"
        p.write_text("\n".join(lines) + "\n")
        return str(p)

    with pytest.raises(EventSchemaError, match="not JSON"):
        validate_jsonl(write(["{nope"]))
    with pytest.raises(EventSchemaError, match="unknown event kind"):
        validate_jsonl(write(['{"seq": 1, "kind": "nope"}']))
    with pytest.raises(EventSchemaError, match="strictly increasing"):
        validate_jsonl(write([
            '{"seq": 2, "kind": "grover_start", "kernel": "k"}',
            '{"seq": 2, "kind": "grover_start", "kernel": "k"}',
        ]))
    with pytest.raises(EventSchemaError, match="missing payload"):
        validate_jsonl(write(['{"seq": 1, "kind": "grover_start"}']))


def test_jsonl_sink_roundtrips_schema(tmp_path):
    path = tmp_path / "t.jsonl"
    sink = JsonlSink(str(path))
    from repro.session import events

    events.attach(sink)
    try:
        for kind, schema in sorted(EVENT_SCHEMA.items()):
            payload = {}
            for name, types in schema.items():
                t = types[0]
                payload[name] = (
                    "x" if t is str else [1] if t is list
                    else True if t is bool else 1
                )
            emit(kind, **payload)
    finally:
        events.detach(sink)
        sink.close()
    assert validate_jsonl(str(path)) == len(EVENT_SCHEMA)


# ---------------------------------------------------------------------------
# pool-fallback observability (ISSUE 3 satellite 1)
# ---------------------------------------------------------------------------


def _break_pools(monkeypatch):
    from repro.parallel import engine

    def boom(*a, **k):
        raise OSError("semaphores unavailable")

    monkeypatch.setattr(engine, "ProcessPoolExecutor", boom)


def test_make_pool_failure_emits_event_when_sink_attached(monkeypatch):
    from repro.parallel.engine import make_pool

    _break_pools(monkeypatch)
    with collect() as sink:
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a warning here would fail
            assert make_pool(2) is None
    ev = sink.of_kind("pool_fallback")
    assert len(ev) == 1
    assert ev[0].payload["where"] == "make_pool"
    assert "OSError" in ev[0].payload["error"]


def test_make_pool_failure_warns_without_sink(monkeypatch):
    from repro.parallel.engine import PoolFallbackWarning, make_pool

    _break_pools(monkeypatch)
    with pytest.warns(PoolFallbackWarning, match="make_pool"):
        assert make_pool(2) is None


def test_parallel_launch_with_broken_pool_still_correct(monkeypatch):
    """A sharded launch degrades to serial, warns, and stays bit-correct."""
    from repro.parallel.engine import PoolFallbackWarning

    _break_pools(monkeypatch)
    a = np.arange(32 * 32, dtype=np.float32)
    with pytest.warns(PoolFallbackWarning):
        _, out = run_scalar_kernel(
            MT_SOURCE,
            {"in": a, "W": 32, "H": 32},
            (32, 32), (16, 16),
            {"out": (np.float32, (32, 32))},
        )
        # run_scalar_kernel launches serially; force the parallel path too
        from repro.frontend import compile_kernel
        from repro.runtime import Memory, launch

        kernel = compile_kernel(MT_SOURCE)
        mem = Memory()
        args = {
            "out": mem.alloc(32 * 32 * 4, "out"),
            "in": mem.from_array(a, "in"),
            "W": 32, "H": 32,
        }
        launch(kernel, (32, 32), (16, 16), args, memory=mem, workers=4)
        got = args["out"].read(np.float32, 32 * 32).reshape(32, 32)
    np.testing.assert_array_equal(got, a.reshape(32, 32).T)


def test_too_few_groups_is_event_only_never_a_warning():
    """The structural can't-shard case must not cry wolf."""
    from repro.frontend import compile_kernel
    from repro.runtime import Memory, launch

    kernel = compile_kernel(MT_SOURCE)
    a = np.arange(16 * 16, dtype=np.float32)

    def go():
        mem = Memory()
        args = {
            "out": mem.alloc(16 * 16 * 4, "out"),
            "in": mem.from_array(a, "in"),
            "W": 16, "H": 16,
        }
        launch(kernel, (16, 16), (16, 16), args, memory=mem, workers=4)

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        go()  # one group, no sink: silent serial fallback, no warning
    with collect() as sink:
        go()
    ev = sink.of_kind("pool_fallback")
    assert len(ev) == 1 and ev[0].payload["where"] == "shard_ranges"
