"""Tests for the affine analysis and the data-index pattern machinery."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.core.affine import AffineContext
from repro.core.exprtree import build_tree
from repro.core.linexpr import ONE, LinExpr, lid, wid
from repro.core.patterns import (
    PatternError,
    detect_strides,
    determine_data_index,
    split_by_stride,
)
from repro.frontend import compile_kernel
from repro.ir.instructions import GEP, Load, Store
from repro.ir.types import AddressSpace


def kernel_with_index(idx_expr: str, arrays="__local float lm[256];", store="lm[%s] = in[0];"):
    src = f"""
__kernel void t(__global float* out, __global const float* in, int W)
{{
    {arrays}
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    {store % idx_expr}
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[0]{'' if '[0]' in store else ''};
}}
"""
    return compile_kernel(src)


def local_store_gep(fn) -> GEP:
    for inst in fn.instructions():
        if isinstance(inst, Store) and inst.addrspace == AddressSpace.LOCAL:
            return inst.ptr
    raise AssertionError("no local store found")


class TestAffineAnalysis:
    def test_thread_ids_become_symbols(self):
        fn = kernel_with_index("lx + ly*16")
        ctx = AffineContext(fn)
        gep = local_store_gep(fn)
        e = ctx.to_linexpr(gep.indices[0])
        assert e.coeff(lid(0)) == 1
        assert e.coeff(lid(1)) == 16

    def test_constants_and_offsets(self):
        fn = kernel_with_index("lx*4 + 3")
        ctx = AffineContext(fn)
        e = ctx.to_linexpr(local_store_gep(fn).indices[0])
        assert e.coeff(lid(0)) == 4
        assert e.const() == 3

    def test_subtraction(self):
        fn = kernel_with_index("lx - ly")
        ctx = AffineContext(fn)
        e = ctx.to_linexpr(local_store_gep(fn).indices[0])
        assert e.coeff(lid(0)) == 1 and e.coeff(lid(1)) == -1

    def test_shift_is_multiplication(self):
        fn = kernel_with_index("(lx << 3) + ly")
        ctx = AffineContext(fn)
        e = ctx.to_linexpr(local_store_gep(fn).indices[0])
        assert e.coeff(lid(0)) == 8

    def test_group_id_symbol(self):
        src = """
__kernel void t(__global float* out, __global const float* in)
{
    __local float lm[64];
    lm[get_group_id(0) % 1 + get_local_id(0)] = in[0];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[0] = lm[0];
}
"""
        fn = compile_kernel(src)
        ctx = AffineContext(fn)
        e = ctx.to_linexpr(local_store_gep(fn).indices[0])
        # the % makes the wid term opaque but lx must survive
        assert e.coeff(lid(0)) == 1

    def test_loop_counter_is_opaque_slot_symbol(self):
        src = """
__kernel void t(__global float* out, __global const float* in, int n)
{
    __local float lm[64];
    int lx = get_local_id(0);
    for (int i = 0; i < n; ++i) {
        lm[lx + i] = in[i];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    out[0] = lm[0];
}
"""
        fn = compile_kernel(src)
        ctx = AffineContext(fn)
        e = ctx.to_linexpr(local_store_gep(fn).indices[0])
        slots = [s for s in e.symbols() if s[0] == "slot"]
        assert len(slots) == 1
        assert e.coeff(lid(0)) == 1

    def test_symbolic_stride_distribution(self):
        fn = kernel_with_index("lx", store="lm[%s] = in[(ly + 1) * W + lx];")
        ctx = AffineContext(fn)
        # find the global load's gep
        for inst in fn.instructions():
            if isinstance(inst, Load) and inst.addrspace == AddressSpace.GLOBAL:
                e = ctx.to_linexpr(inst.ptr.indices[0])
                break
        prods = [s for s in e.symbols() if s[0] == "prod"]
        assert prods, "(ly+1)*W should distribute into prod symbols"
        args = [s for s in e.symbols() if s[0] == "arg"]
        assert args, "the +1*W part should appear as the W argument term"


class TestStrideDetection:
    def test_mul_constant_found(self):
        fn = kernel_with_index("ly*16 + lx")
        tree = build_tree(local_store_gep(fn).indices[0])
        assert 16 in detect_strides(tree)

    def test_shift_found(self):
        fn = kernel_with_index("(ly << 4) + lx")
        tree = build_tree(local_store_gep(fn).indices[0])
        assert 16 in detect_strides(tree)

    def test_descending_order(self):
        fn = kernel_with_index("ly*64 + lx*4")
        tree = build_tree(local_store_gep(fn).indices[0])
        strides = detect_strides(tree)
        assert strides == sorted(strides, reverse=True)


class TestSplitByStride:
    def test_basic_split(self):
        e = LinExpr({lid(1): Fraction(16), lid(0): Fraction(1)})
        low, high = split_by_stride(e, 16)
        assert low == LinExpr.symbol(lid(0))
        assert high == LinExpr.symbol(lid(1))

    def test_constant_divmod(self):
        # (ly+1)*16 + lx+1 = 16*ly + lx + 17
        e = LinExpr({lid(1): Fraction(16), lid(0): Fraction(1), ONE: Fraction(17)})
        low, high = split_by_stride(e, 16)
        assert low == LinExpr.symbol(lid(0)) + LinExpr.constant(1)
        assert high == LinExpr.symbol(lid(1)) + LinExpr.constant(1)

    def test_strict_mode_rejects_derived_pattern(self):
        # Fig 7(b): loop-dependent extra term in the low dimension
        e = LinExpr(
            {lid(1): Fraction(16), lid(0): Fraction(1), ("slot", object()): Fraction(1)}
        )
        with pytest.raises(PatternError):
            split_by_stride(e, 16, strict=True)
        low, high = split_by_stride(e, 16, strict=False)
        assert high == LinExpr.symbol(lid(1))

    def test_invalid_stride(self):
        with pytest.raises(PatternError):
            split_by_stride(LinExpr.zero(), 1)

    @given(
        st.integers(0, 15),
        st.integers(0, 15),
        st.sampled_from([4, 8, 16, 32]),
    )
    def test_roundtrip_property(self, a, b, s):
        """low + high*s must equal the original expression."""
        e = LinExpr({lid(0): Fraction(a), lid(1): Fraction(b * s), ONE: Fraction(a % s)})
        low, high = split_by_stride(e, s)
        assert low + high.scale(s) == e


class TestDetermineDataIndex:
    def test_multi_index_gep_direct(self):
        src = """
__kernel void t(__global float* out, __global const float* in)
{
    __local float lm[8][16];
    lm[get_local_id(1)][get_local_id(0)] = in[0];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[0] = lm[0][0];
}
"""
        fn = compile_kernel(src)
        ctx = AffineContext(fn)
        dims, _ = determine_data_index(ctx, local_store_gep(fn))
        assert len(dims) == 2
        assert dims[0] == LinExpr.symbol(lid(0))  # x = fastest
        assert dims[1] == LinExpr.symbol(lid(1))

    def test_flat_index_split(self):
        fn = kernel_with_index("ly*16 + lx")
        ctx = AffineContext(fn)
        dims, _ = determine_data_index(ctx, local_store_gep(fn))
        assert len(dims) == 2
        assert dims[0] == LinExpr.symbol(lid(0))
        assert dims[1] == LinExpr.symbol(lid(1))

    def test_1d_index_stays_1d(self):
        fn = kernel_with_index("lx")
        ctx = AffineContext(fn)
        dims, _ = determine_data_index(ctx, local_store_gep(fn))
        assert dims == [LinExpr.symbol(lid(0))]

    def test_3d_flat_split(self):
        src = """
__kernel void t(__global float* out, __global const float* in)
{
    __local float lm[512];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int lz = get_local_id(2);
    lm[lz*64 + ly*8 + lx] = in[0];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[0] = lm[0];
}
"""
        fn = compile_kernel(src)
        ctx = AffineContext(fn)
        dims, _ = determine_data_index(ctx, local_store_gep(fn))
        assert len(dims) == 3
        assert dims[0] == LinExpr.symbol(lid(0))
        assert dims[1] == LinExpr.symbol(lid(1))
        assert dims[2] == LinExpr.symbol(lid(2))
