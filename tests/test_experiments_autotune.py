"""Tests for the experiment drivers, the auto-tuner, CLI and reporting."""

import numpy as np
import pytest

from repro.apps.registry import TABLE_ORDER
from repro.autotune import autotune
from repro.experiments import (
    FIG2_APPS,
    app_trace,
    clear_caches,
    figure2,
    figure10,
    normalized_perf,
    table4,
)
from repro.reporting import ascii_table, bar_series, normalized_perf_table

from tests.conftest import MT_SOURCE, REDUCTION_SOURCE


@pytest.fixture(autouse=True, scope="module")
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestExperimentDrivers:
    def test_traces_cached(self):
        t1 = app_trace("NVD-MT", "with", "test")
        t2 = app_trace("NVD-MT", "with", "test")
        assert t1 is t2

    def test_normalized_perf_is_positive(self):
        v = normalized_perf("NVD-MT", "SNB", "test")
        assert v > 0

    def test_mt_gains_on_cpus_at_test_scale(self):
        for dev in ("SNB", "Nehalem"):
            assert normalized_perf("NVD-MT", dev, "test") > 1.0

    def test_figure10_series(self):
        s = figure10("SNB", scale="test")
        assert set(s.values) == set(TABLE_ORDER)
        verdicts = s.classify_all()
        assert set(verdicts.values()) <= {"gain", "loss", "similar"}

    def test_table4_shape(self):
        t = table4(scale="test")
        assert t.cases == 33
        assert set(t.per_device) == {"SNB", "Nehalem", "MIC"}
        assert sum(t.totals.values()) == 33

    def test_figure2_covers_six_platforms(self):
        f2 = figure2(scale="test")
        assert set(f2) == {"MT", "MM"}
        for series in f2.values():
            assert set(series) == {"Fermi", "Kepler", "Tahiti", "SNB", "Nehalem", "MIC"}

    def test_fig2_apps_match_paper_setup(self):
        assert FIG2_APPS == ("NVD-MT", "NVD-MM-A")


class TestAutotuner:
    def test_picks_transformed_on_cpu_for_mt(self):
        n = 64
        rng = np.random.default_rng(0)
        inputs = {
            "in": rng.random((n, n), dtype=np.float32),
            "out": np.zeros((n, n), dtype=np.float32),
            "W": n,
            "H": n,
        }
        res = autotune(MT_SOURCE, "SNB", (n, n), (16, 16), inputs)
        assert res.best == "without"
        assert res.normalized_perf > 1.0
        assert res.report is not None and res.report.fully_disabled

    def test_picks_original_on_gpu_for_mt(self):
        n = 64
        rng = np.random.default_rng(0)
        inputs = {
            "in": rng.random((n, n), dtype=np.float32),
            "out": np.zeros((n, n), dtype=np.float32),
            "W": n,
            "H": n,
        }
        res = autotune(MT_SOURCE, "Fermi", (n, n), (16, 16), inputs)
        assert res.best == "with"
        assert res.normalized_perf < 1.0

    def test_fallback_when_not_transformable(self):
        inputs = {
            "in": np.zeros(64, dtype=np.float32),
            "out": np.zeros(1, dtype=np.float32),
        }
        res = autotune(REDUCTION_SOURCE, "SNB", (64,), (64,), inputs)
        assert res.best == "with"
        assert "could not disable" in res.reason
        assert res.report is None

    def test_improved_property(self):
        n = 32
        inputs = {
            "in": np.zeros((n, n), dtype=np.float32),
            "out": np.zeros((n, n), dtype=np.float32),
            "W": n,
            "H": n,
        }
        res = autotune(MT_SOURCE, "SNB", (n, n), (16, 16), inputs, sample_groups=None)
        assert res.improved == (res.best == "without")


class TestReporting:
    def test_ascii_table(self):
        t = ascii_table(["a", "bb"], [[1, 2], [30, 4]], title="T")
        lines = t.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "30" in t

    def test_bar_series_marks_parity(self):
        s = bar_series({"x": 1.5, "y": 0.5})
        assert "x" in s and "y" in s
        assert "|" in s or "+" in s

    def test_bar_series_empty(self):
        assert bar_series({}) == "(empty)"

    def test_normalized_perf_table(self):
        per_dev = {"SNB": {"A": 1.0, "B": 0.5}, "MIC": {"A": 1.2, "B": 0.9}}
        t = normalized_perf_table(per_dev, ["A", "B"])
        assert "SNB" in t and "MIC" in t and "0.500" in t


class TestCLI:
    def test_cli_transforms_file(self, tmp_path, capsys):
        from repro.cli import main

        f = tmp_path / "mt.cl"
        f.write_text(MT_SOURCE)
        rc = main([str(f), "--before"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "before Grover" in out
        assert "after Grover" in out
        assert "[ok] lm" in out

    def test_cli_rejects_reduction(self, tmp_path, capsys):
        from repro.cli import main

        f = tmp_path / "red.cl"
        f.write_text(REDUCTION_SOURCE)
        rc = main([str(f)])
        assert rc == 2
        assert "cannot disable" in capsys.readouterr().err

    def test_cli_parse_error(self, tmp_path, capsys):
        from repro.cli import main

        f = tmp_path / "bad.cl"
        f.write_text("__kernel void k(__global float* o) { o[0] = ; }")
        rc = main([str(f)])
        assert rc == 1

    def test_cli_defines_and_arrays(self, tmp_path, capsys):
        from repro.cli import main
        from tests.conftest import MM_SOURCE

        f = tmp_path / "mm.cl"
        f.write_text(MM_SOURCE)
        rc = main([str(f), "--arrays", "As", "--keep-barriers"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[ok] As" in out
        assert "Bs" not in out.split("after Grover")[0] or True
