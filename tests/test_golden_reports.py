"""Golden-file tests for the Grover analysis reports.

``str(GroverReport)`` is the user-facing rendering of Table III — the
GL/LS/LL index strings and the solved nGL writer index per local array.
Each application's report is pinned byte-for-byte under
``tests/golden/<app-id>.txt``; a drift in symbolic rendering, solver
output or cleanup counts shows up as a readable unified diff.

To regenerate after an intentional change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_reports.py
"""

from __future__ import annotations

import difflib
import os
from pathlib import Path

import pytest

from repro.apps.harness import compile_app
from repro.apps.registry import TABLE_ORDER, get_app

GOLDEN_DIR = Path(__file__).parent / "golden"
UPDATE = os.environ.get("REPRO_UPDATE_GOLDEN") == "1"


def _render_report(app_id: str) -> str:
    _, report = compile_app(get_app(app_id), "without")
    return str(report).rstrip("\n") + "\n"


@pytest.mark.parametrize("app_id", TABLE_ORDER)
def test_report_matches_golden(app_id):
    got = _render_report(app_id)
    path = GOLDEN_DIR / f"{app_id}.txt"

    if UPDATE:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(got)
        pytest.skip(f"regenerated {path}")

    assert path.exists(), (
        f"missing golden file {path}; run with REPRO_UPDATE_GOLDEN=1 to create it"
    )
    want = path.read_text()
    if got != want:
        diff = "".join(
            difflib.unified_diff(
                want.splitlines(keepends=True),
                got.splitlines(keepends=True),
                fromfile=f"golden/{app_id}.txt",
                tofile=f"current {app_id}",
            )
        )
        pytest.fail(
            f"GroverReport for {app_id} drifted from golden file:\n{diff}\n"
            "If the change is intentional, regenerate with REPRO_UPDATE_GOLDEN=1."
        )


@pytest.mark.parametrize("app_id", TABLE_ORDER)
def test_session_path_matches_golden_byte_for_byte(app_id):
    """An explicit Session reproduces the pinned report exactly — the
    refactor's guarantee that the Session path is the legacy path."""
    from repro.session import Session

    path = GOLDEN_DIR / f"{app_id}.txt"
    if UPDATE or not path.exists():
        pytest.skip("golden files not pinned in this run")
    _, report = Session(env={}).compile_app(get_app(app_id), "without")
    assert str(report).rstrip("\n") + "\n" == path.read_text()


def test_golden_dir_has_no_strays():
    """Every golden file corresponds to a known application."""
    if not GOLDEN_DIR.exists():
        pytest.skip("golden dir not generated yet")
    known = {f"{app_id}.txt" for app_id in TABLE_ORDER}
    known.add("analyze.txt")  # the `repro analyze` verdict summary (CI)
    known.add("search.txt")  # the `repro search` pipeline report (CI)
    strays = {p.name for p in GOLDEN_DIR.glob("*.txt")} - known
    assert not strays, f"unexpected golden files: {sorted(strays)}"
