"""Static analyzer: phase regions, pair decisions, staging, divergence.

The ISSUE-4 tentpole: an independent, static arbiter for the properties
Grover's legality argument rests on — no intra-group races, no barrier
divergence, every local byte staged from global memory.
"""

from __future__ import annotations

from repro.analysis import analyze_kernel
from repro.analysis.races import (
    analyze_races_static,
    collect_accesses,
    phase_regions,
)
from repro.frontend import compile_kernel
from repro.ir.cfg import post_dominators


TRANSPOSE = """
__kernel void t(__global float* out, __global const float* in) {
    __local float lm[16][16];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    lm[ly][lx] = in[get_global_id(1)*32 + get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(1)*32 + get_global_id(0)] = lm[lx][ly];
}
"""


class TestPhaseRegions:
    def test_barrier_splits_straightline_code(self):
        fn = compile_kernel(TRANSPOSE)
        regions, barriers = phase_regions(fn)
        assert barriers == 1
        accs = collect_accesses(fn)
        local = [a for a in accs if a.obj_name == "lm"]
        store = next(a for a in local if a.is_store)
        load = next(a for a in local if not a.is_store)
        assert store.region != load.region

    def test_single_barrier_loop_merges_through_back_edge(self):
        # the classic missing-second-barrier shape: the load of iteration
        # t and the store of iteration t+1 meet through the back edge,
        # so they must share a phase region (and indeed can race)
        src = """
__kernel void k(__global float* out, __global const float* in, int n) {
    __local float lm[16];
    int li = get_local_id(0);
    float acc = 0.0f;
    for (int t = 0; t < n; ++t) {
        lm[li] = in[t*16 + li];
        barrier(CLK_LOCAL_MEM_FENCE);
        acc += lm[15 - li];
    }
    out[get_global_id(0)] = acc;
}
"""
        fn = compile_kernel(src)
        accs = [a for a in collect_accesses(fn) if a.obj_name == "lm"]
        store = next(a for a in accs if a.is_store)
        load = next(a for a in accs if not a.is_store)
        assert store.region == load.region

    def test_double_barrier_loop_keeps_regions_apart(self):
        # with the second barrier closing the iteration, store and load
        # never share a region (the NVD-MM software-pipeline shape)
        src = """
__kernel void k(__global float* out, __global const float* in, int n) {
    __local float lm[16];
    int li = get_local_id(0);
    float acc = 0.0f;
    for (int t = 0; t < n; ++t) {
        lm[li] = in[t*16 + li];
        barrier(CLK_LOCAL_MEM_FENCE);
        acc += lm[15 - li];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    out[get_global_id(0)] = acc;
}
"""
        fn = compile_kernel(src)
        accs = [a for a in collect_accesses(fn) if a.obj_name == "lm"]
        store = next(a for a in accs if a.is_store)
        load = next(a for a in accs if not a.is_store)
        assert store.region != load.region


class TestPairDecisions:
    def _accesses(self, src):
        fn = compile_kernel(src)
        return fn, [a for a in collect_accesses(fn) if a.obj_name == "lm"]

    def test_identity_staging_is_safe(self):
        fn = compile_kernel(TRANSPOSE)
        report = analyze_kernel(fn, (16, 16))
        assert report.verdict == "clean"
        assert report.pairs_undecided == 0

    def test_offset_store_race_detected(self):
        src = """
__kernel void k(__global float* out, __global const float* in) {
    __local float lm[65];
    int lx = get_local_id(0);
    lm[lx] = in[get_global_id(0)];
    lm[lx + 1] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[lx];
}
"""
        fn = compile_kernel(src)
        report = analyze_kernel(fn, (64,))
        assert report.verdict == "race"
        kinds = {f.kind for f in report.findings}
        assert "race-ww" in kinds
        assert all(f.decided_by == "static" for f in report.races)

    def test_same_phase_read_write_race(self):
        src = """
__kernel void k(__global int* out) {
    __local int lm[64];
    int lx = get_local_id(0);
    lm[lx] = lx;
    out[get_global_id(0)] = lm[63 - lx];  /* no barrier in between */
}
"""
        fn = compile_kernel(src)
        report = analyze_races_static(fn, (64,))
        assert any(f.kind == "race-rw" for f in report.findings)

    def test_byte_granularity_overlap(self):
        # int stores at 4*lx vs char loads at lx: lanes 4..63 read bytes
        # other lanes wrote in the same phase
        src = """
__kernel void k(__global char* out, __global const int* in) {
    __local int lm[64];
    int lx = get_local_id(0);
    lm[lx] = in[get_global_id(0)];
    out[get_global_id(0)] = ((__local char*)lm)[lx];
}
"""
        fn = compile_kernel(src)
        report = analyze_races_static(fn, (64,))
        assert any(f.kind == "race-rw" for f in report.findings)

    def test_no_geometry_means_undecided(self):
        fn = compile_kernel(TRANSPOSE)
        report = analyze_races_static(fn, None)
        assert report.pairs_undecided > 0

    def test_symbolic_shared_delta_is_undecided(self):
        # store at lx + H (argument-dependent): the delta between the
        # two stores depends on a group-uniform unknown
        src = """
__kernel void k(__global float* out, __global const float* in, int H) {
    __local float lm[128];
    int lx = get_local_id(0);
    lm[lx] = in[get_global_id(0)];
    lm[lx + H] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[lx];
}
"""
        fn = compile_kernel(src)
        report = analyze_races_static(fn, (64,))
        assert report.pairs_undecided > 0
        assert not report.findings  # nothing decided -> nothing claimed

    def test_guarded_access_goes_to_dynamic(self):
        # halo pattern: guarded store would look racy to the box
        # enumeration; it must be deferred, not misreported
        src = """
__kernel void k(__global float* out, __global const float* in) {
    __local float lm[66];
    int lx = get_local_id(0);
    int gid = get_global_id(0);
    lm[lx + 1] = in[gid];
    if (lx == 0) lm[0] = in[gid];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[gid] = lm[lx] + lm[lx + 1];
}
"""
        fn = compile_kernel(src)
        report = analyze_races_static(fn, (64,))
        assert not report.races
        assert report.pairs_undecided > 0


class TestStaging:
    def test_computed_store_is_irreversible(self):
        src = """
__kernel void k(__global float* out, __global const float* in) {
    __local float lm[64];
    int lx = get_local_id(0);
    lm[lx] = in[get_global_id(0)] * 2.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[lx];
}
"""
        report = analyze_kernel(compile_kernel(src), (64,))
        assert report.verdict == "irreversible"
        assert any(f.kind == "non-global-staging" for f in report.findings)

    def test_global_staging_is_clean(self):
        report = analyze_kernel(compile_kernel(TRANSPOSE), (16, 16))
        assert not any(f.kind == "non-global-staging" for f in report.findings)


class TestDivergence:
    def test_divergent_barrier_flagged(self):
        src = """
__kernel void k(__global int* out) {
    __local int lm[64];
    int lx = get_local_id(0);
    lm[lx] = lx;
    if (lx < 32) { barrier(CLK_LOCAL_MEM_FENCE); }
    out[get_global_id(0)] = lm[lx];
}
"""
        report = analyze_kernel(compile_kernel(src), (64,))
        assert report.verdict == "divergent"
        f = report.divergences[0]
        assert f.decided_by == "static"
        assert f.a_inst is not None and f.b_inst is not None

    def test_guarded_store_with_postdominating_barrier_is_fine(self):
        # the ROD-SC shape: the branch rejoins before the barrier
        src = """
__kernel void k(__global int* out, __global const int* in) {
    __local int lm[64];
    int lx = get_local_id(0);
    if (lx < 16) { lm[lx] = in[get_global_id(0)]; }
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[lx % 16];
}
"""
        report = analyze_kernel(compile_kernel(src), (64,))
        assert not report.divergences

    def test_uniform_branch_barrier_is_fine(self):
        # branching on a kernel argument is group-uniform
        src = """
__kernel void k(__global int* out, __global const int* in, int flag) {
    __local int lm[64];
    int lx = get_local_id(0);
    lm[lx] = in[get_global_id(0)];
    if (flag) { barrier(CLK_LOCAL_MEM_FENCE); }
    out[get_global_id(0)] = lm[lx];
}
"""
        report = analyze_kernel(compile_kernel(src), (64,))
        assert not report.divergences

    def test_barrier_in_uniform_loop_is_fine(self):
        src = """
__kernel void k(__global int* out, int n) {
    __local int lm[16];
    int li = get_local_id(0);
    int acc = 0;
    for (int t = 0; t < n; ++t) {
        lm[li] = li + t;
        barrier(CLK_LOCAL_MEM_FENCE);
        acc += lm[(li + 1) % 16];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    out[get_global_id(0)] = acc;
}
"""
        report = analyze_kernel(compile_kernel(src), (16,))
        assert not report.divergences


class TestPostDominators:
    def test_diamond(self):
        src = """
__kernel void k(__global int* out, int c) {
    int x;
    if (c) { x = 1; } else { x = 2; }
    out[get_global_id(0)] = x;
}
"""
        fn = compile_kernel(src)
        pdom = post_dominators(fn)
        blocks = {bb.name: bb for bb in fn.blocks}
        entry = fn.entry
        join = next(
            bb for bb in fn.blocks
            if bb.name not in ("if.then", "if.else") and bb is not entry
        )
        assert join in pdom[entry]
        assert blocks["if.then"] not in pdom[entry]
