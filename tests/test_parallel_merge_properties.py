"""Property/fuzz tests for the sharding and merge layer.

Hypothesis-style seeded loops (explicit ``np.random.default_rng`` seeds,
no wall-clock randomness): whatever the group count, shard boundaries,
``sample_groups`` subset or worker completion order, the merged result
must equal the canonical serial one.  The pure functions are fuzzed
directly; one small real kernel closes the loop end-to-end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir.types import AddressSpace
from repro.parallel.sharding import merge_group_traces, select_groups, shard_ranges
from repro.runtime.trace import GroupTrace, MemEvent

SEEDS = range(12)


# ---------------------------------------------------------------------------
# shard_ranges
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_shard_ranges_partition_everything_exactly_once(seed):
    rng = np.random.default_rng(seed)
    n_items = int(rng.integers(0, 200))
    shards = int(rng.integers(1, 20))
    ranges = shard_ranges(n_items, shards)

    assert len(ranges) == min(shards, n_items)
    covered = [i for lo, hi in ranges for i in range(lo, hi)]
    assert covered == list(range(n_items))
    sizes = [hi - lo for lo, hi in ranges]
    if sizes:
        assert all(s >= 1 for s in sizes)
        assert max(sizes) - min(sizes) <= 1  # near-equal load


def test_shard_ranges_rejects_bad_inputs():
    with pytest.raises(ValueError):
        shard_ranges(10, 0)
    with pytest.raises(ValueError):
        shard_ranges(-1, 2)


# ---------------------------------------------------------------------------
# select_groups
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_select_groups_subset_properties(seed):
    rng = np.random.default_rng(seed)
    total = int(rng.integers(1, 500))
    sample = int(rng.integers(1, 64))
    picks = select_groups(total, sample)

    assert len(picks) == min(sample, total)
    assert (np.diff(picks) > 0).all()  # strictly increasing, no dupes
    assert picks[0] >= 0 and picks[-1] < total
    if sample >= total:
        assert np.array_equal(picks, np.arange(total))


@pytest.mark.parametrize("seed", SEEDS)
def test_select_groups_independent_of_sharding(seed):
    """Sharding the pick list and concatenating the slices is a no-op —
    the invariant that lets every worker recompute its parent's picks."""
    rng = np.random.default_rng(seed)
    total = int(rng.integers(1, 500))
    sample = int(rng.integers(1, 64)) if rng.random() < 0.7 else None
    picks = select_groups(total, sample)
    shards = int(rng.integers(1, 9))
    rejoined = np.concatenate(
        [picks[lo:hi] for lo, hi in shard_ranges(len(picks), shards)]
    ) if len(picks) else picks
    assert np.array_equal(rejoined, picks)


# ---------------------------------------------------------------------------
# merge_group_traces
# ---------------------------------------------------------------------------


def _random_group_trace(rng: np.random.Generator, flat_id: int) -> GroupTrace:
    gt = GroupTrace((flat_id,), work_items=int(rng.integers(1, 16)))
    for _ in range(int(rng.integers(0, 4))):
        n = int(rng.integers(1, 8))
        gt.events.append(
            MemEvent(
                space=AddressSpace.GLOBAL if rng.random() < 0.8 else AddressSpace.LOCAL,
                is_store=bool(rng.random() < 0.5),
                buffer_id=int(rng.integers(1, 5)),
                offsets=rng.integers(0, 1 << 12, n).astype(np.int64),
                lanes=np.arange(n, dtype=np.int64),
                elem_size=int(rng.choice([1, 4, 8])),
                phase=int(rng.integers(0, 3)),
                inst_id=int(rng.integers(0, 100)),
            )
        )
    gt.inst_count = int(rng.integers(0, 1000))
    gt.barriers = int(rng.integers(0, 4))
    return gt


@pytest.mark.parametrize("seed", SEEDS)
def test_merge_is_independent_of_shard_size_and_completion_order(seed):
    rng = np.random.default_rng(seed)
    canonical = [_random_group_trace(rng, i) for i in range(int(rng.integers(1, 60)))]

    for _ in range(5):  # several shardings of the same canonical list
        shards = int(rng.integers(1, 9))
        pieces = [
            (idx, canonical[lo:hi])
            for idx, (lo, hi) in enumerate(shard_ranges(len(canonical), shards))
        ]
        order = rng.permutation(len(pieces))  # workers finish in any order
        merged = merge_group_traces([pieces[i] for i in order])
        assert merged == canonical


def test_merge_rejects_duplicate_shard_indices():
    with pytest.raises(ValueError):
        merge_group_traces([(0, []), (1, []), (0, [])])


# ---------------------------------------------------------------------------
# end-to-end: a real kernel fuzzed over geometry, sampling and workers
# ---------------------------------------------------------------------------

_FUZZ_SOURCE = r"""
#define L 8
__kernel void scale2(__global float* out, __global const float* in)
{
    __local float stage[L];
    int li = get_local_id(0);
    stage[li] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = stage[(li + 1) % L] * 2.0f;
}
"""


@pytest.mark.parametrize("seed", range(4))
def test_real_kernel_fuzzed_shards_match_serial(seed):
    from repro.frontend import compile_kernel
    from repro.parallel.diff import assert_outputs_equal, assert_traces_equal
    from repro.runtime import Memory, launch

    rng = np.random.default_rng(seed)
    kernel = compile_kernel(_FUZZ_SOURCE)
    n_groups = int(rng.integers(2, 24))
    gsize = (8 * n_groups,)
    sample = int(rng.integers(1, n_groups + 3)) if rng.random() < 0.5 else None
    data = rng.standard_normal(gsize[0]).astype(np.float32)

    def run(workers):
        mem = Memory()
        args = {
            "in": mem.from_array(data, "in"),
            "out": mem.alloc(data.nbytes, "out"),
        }
        res = launch(
            kernel, gsize, (8,), args, memory=mem,
            collect_trace=True, sample_groups=sample, workers=workers,
        )
        return res.trace, {"out": args["out"].read(np.float32, gsize[0])}

    trace_s, out_s = run(1)
    for workers in (int(rng.integers(2, 6)),):
        trace_p, out_p = run(workers)
        ctx = f"seed={seed} groups={n_groups} sample={sample} workers={workers}"
        assert_traces_equal(trace_s, trace_p, ctx)
        assert_outputs_equal(out_s, out_p, ctx)
