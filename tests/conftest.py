"""Shared fixtures and kernel-source helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.frontend import compile_kernel
from repro.runtime import Memory, launch

#: the paper's Fig. 1(a) kernel — used all over the suite
MT_SOURCE = r"""
#define S 16
__kernel void transpose(__global float* out, __global const float* in,
                        int W, int H)
{
    __local float lm[S][S];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    lm[ly][lx] = in[(wx*S + ly)*W + (wy*S + lx)];
    barrier(CLK_LOCAL_MEM_FENCE);
    float val = lm[lx][ly];
    out[get_global_id(1)*H + get_global_id(0)] = val;
}
"""

#: flat-local-array tiled matmul (NVIDIA SDK style)
MM_SOURCE = r"""
#define BS 16
__kernel void matrixMul(__global float* C, __global float* A,
                        __global float* B, int wA, int wB)
{
    __local float As[BS*BS];
    __local float Bs[BS*BS];
    int tx = get_local_id(0);
    int ty = get_local_id(1);
    float acc = 0.0f;
    for (int t = 0; t < wA / BS; ++t) {
        As[ty*BS + tx] = A[(get_group_id(1)*BS + ty)*wA + (t*BS + tx)];
        Bs[ty*BS + tx] = B[(t*BS + ty)*wB + (get_group_id(0)*BS + tx)];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int k = 0; k < BS; ++k)
            acc += As[ty*BS + k] * Bs[k*BS + tx];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    C[get_global_id(1)*wB + get_global_id(0)] = acc;
}
"""

#: a reduction — the pattern Grover must reject (Section VI-D)
REDUCTION_SOURCE = r"""
__kernel void reduceSum(__global float* out, __global const float* in)
{
    __local float sm[64];
    int li = get_local_id(0);
    sm[li] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int s = 32; s > 0; s = s >> 1) {
        if (li < s)
            sm[li] = sm[li] + sm[li + s];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (li == 0)
        out[get_group_id(0)] = sm[0];
}
"""


def run_scalar_kernel(source, args_spec, global_size, local_size, outs,
                      kernel_name=None, defines=None):
    """Compile + launch helper: ``args_spec`` maps names to arrays or
    scalars; ``outs`` maps output names to (dtype, shape).  Returns the
    kernel function and a dict of output arrays."""
    kernel = compile_kernel(source, kernel_name, defines=defines)
    return execute_kernel(kernel, args_spec, global_size, local_size, outs)


def execute_kernel(kernel, args_spec, global_size, local_size, outs):
    mem = Memory()
    args = {}
    bufs = {}
    for name, v in args_spec.items():
        if isinstance(v, np.ndarray):
            bufs[name] = mem.from_array(v, name)
            args[name] = bufs[name]
        else:
            args[name] = v
    for name, (dtype, shape) in outs.items():
        if name not in bufs:
            nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
            bufs[name] = mem.alloc(nbytes, name)
            args[name] = bufs[name]
    launch(kernel, global_size, local_size, args, memory=mem)
    results = {
        name: bufs[name].read(np.dtype(dtype), int(np.prod(shape))).reshape(shape)
        for name, (dtype, shape) in outs.items()
    }
    return kernel, results


@pytest.fixture(autouse=True)
def _fresh_worker_pool():
    """Isolate tests from the process-wide persistent worker pool: a pool
    warmed (or monkeypatched into existence) by one test must never leak
    into the next.  Tests exercising persistence do so within one test."""
    yield
    from repro.parallel import pool as worker_pool

    worker_pool.shutdown_shared()
    worker_pool.reset_stats()


@pytest.fixture
def mt_kernel():
    return compile_kernel(MT_SOURCE)


@pytest.fixture
def mm_kernel():
    return compile_kernel(MM_SOURCE)
