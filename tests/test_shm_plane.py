"""The zero-copy shared-memory execution plane (DESIGN.md §17).

Three contracts:

* **bit-identity** — every Table III app, both variants, produces the
  same traces and output bytes whether buffers travel through the
  shared-memory arena (``pool_shm=1``) or the historical pickled-copy
  plane (``pool_shm=0``), enforced through :mod:`repro.parallel.diff`;
* **hygiene** — no ``/dev/shm`` segment and no spill fd survives a
  launch on any exit path: success, a worker faulting mid-shard, or a
  ``KeyboardInterrupt`` landing in the gather loop;
* **reuse** — search scoring and tune labeling ride the persistent
  pool and reproduce their serial results bit-for-bit.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.apps.harness import compile_app, execute_app
from repro.apps.registry import TABLE_ORDER, get_app
from repro.frontend import compile_kernel
from repro.parallel import pool as worker_pool
from repro.parallel.diff import assert_outputs_equal, assert_traces_equal
from repro.runtime import Memory, launch
from repro.runtime.errors import RuntimeLaunchError
from repro.session import Session, events

_SOURCE = r"""
__kernel void copy(__global float* out, __global const float* in)
{
    out[get_global_id(0)] = in[get_global_id(0)];
}
"""

# groups other than group 0 read far outside the input buffer, so the
# fault happens mid-shard in a worker that already ran one group fine
_FAULTY_SOURCE = r"""
__kernel void faulty(__global float* out, __global const float* in)
{
    int idx = get_global_id(0);
    if (get_group_id(0) > 0)
        idx = idx + (1 << 20);
    out[get_global_id(0)] = in[idx];
}
"""


def _launch_with(source, workers, groups=4, lsize=8):
    kernel = compile_kernel(source)
    n = groups * lsize
    mem = Memory()
    data = np.arange(n, dtype=np.float32)
    args = {"in": mem.from_array(data, "in"), "out": mem.alloc(data.nbytes, "out")}
    res = launch(
        kernel, (n,), (lsize,), args, memory=mem,
        collect_trace=True, workers=workers,
    )
    return res, args["out"].read(np.float32, n)


# ---------------------------------------------------------------------------
# bit-identity: both planes, all apps, both variants
# ---------------------------------------------------------------------------


WORKER_COUNTS = (2, 4)


@pytest.mark.parametrize("shm", (0, 1), ids=("pickled-plane", "shm-plane"))
@pytest.mark.parametrize("app_id", TABLE_ORDER)
def test_apps_bit_identical_under_both_planes(app_id, shm):
    app = get_app(app_id)
    with Session(pool_shm=bool(shm)).activate():
        for variant in ("with", "without"):
            kernel, report = compile_app(app, variant)
            serial = execute_app(
                app, kernel, variant=variant, scale="test",
                collect_trace=True, report=report,
            )
            for workers in WORKER_COUNTS:
                parallel = execute_app(
                    app, kernel, variant=variant, scale="test",
                    collect_trace=True, workers=workers, report=report,
                )
                ctx = f"{app_id}[{variant}] pool_shm={shm} workers={workers}"
                assert_traces_equal(serial.trace, parallel.trace, ctx)
                assert_outputs_equal(serial.outputs, parallel.outputs, ctx)


def test_both_planes_agree_with_each_other():
    """The escape hatch is not a different semantics: identical bytes."""
    with Session(pool_shm=True).activate():
        _, out_shm = _launch_with(_SOURCE, workers=2)
    with Session(pool_shm=False).activate():
        _, out_pickle = _launch_with(_SOURCE, workers=2)
    np.testing.assert_array_equal(out_shm, out_pickle)


def test_shm_launch_emits_plane_events():
    with events.collect() as sink:
        _launch_with(_SOURCE, workers=2)
    assert len(sink.of_kind("shm_publish")) == 1
    pub = sink.of_kind("shm_publish")[0].payload
    assert pub["buffers"] == 2 and pub["bytes"] > 0
    tasks = sink.of_kind("pool_task")
    assert len(tasks) == 2  # one per shard
    assert sorted(t.payload["shard"] for t in tasks) == [0, 1]
    assert all(t.payload["groups"] == 2 for t in tasks)


def test_pickled_plane_skips_shm_entirely(monkeypatch):
    """``pool_shm=0`` must not touch ``/dev/shm`` at all — it is the
    escape hatch for hosts where POSIX shared memory is restricted."""
    from multiprocessing import shared_memory

    def forbidden(*a, **k):
        raise AssertionError("pool_shm=0 must not create shm segments")

    with Session(pool_shm=False).activate():
        monkeypatch.setattr(shared_memory.SharedMemory, "__init__", forbidden)
        _, out = _launch_with(_SOURCE, workers=2)
    np.testing.assert_array_equal(out, np.arange(32, dtype=np.float32))


# ---------------------------------------------------------------------------
# hygiene: nothing survives any exit path
# ---------------------------------------------------------------------------


def _dev_shm() -> set:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux fallback
        return set()


def _open_fds() -> int:
    return len(os.listdir("/proc/self/fd"))


def _warm():
    """Fork the persistent pool before snapshotting: its pipes and the
    executor machinery are long-lived by design, not leaks."""
    _launch_with(_SOURCE, workers=2)


def test_no_segments_or_fds_leak_after_success():
    _warm()
    shm_before, fds_before = _dev_shm(), _open_fds()
    for _ in range(3):
        res, out = _launch_with(_SOURCE, workers=2)
        assert res.trace is not None
        del res  # the trace holds the (legitimate) spill store
    assert _dev_shm() == shm_before
    assert _open_fds() <= fds_before


def test_no_segments_or_fds_leak_after_worker_fault():
    _warm()
    shm_before, fds_before = _dev_shm(), _open_fds()
    for _ in range(2):
        with pytest.raises(RuntimeLaunchError, match="failed"):
            _launch_with(_FAULTY_SOURCE, workers=2)
    assert _dev_shm() == shm_before
    assert _open_fds() <= fds_before


def test_no_segments_or_fds_leak_after_interrupt(monkeypatch):
    """A Ctrl-C landing in the gather loop: the interrupt propagates
    unwrapped, every outstanding shard is drained, and the arena plus
    every shard trace segment is unlinked before the launch unwinds."""
    import repro.parallel.engine as engine

    _warm()
    shm_before, fds_before = _dev_shm(), _open_fds()

    real_receive = engine._receive
    state = {"calls": 0}

    def interrupting_receive(fut):
        state["calls"] += 1
        if state["calls"] == 1:
            fut.result()  # let the worker finish (it created its segment)
            raise KeyboardInterrupt()
        return real_receive(fut)

    monkeypatch.setattr(engine, "_receive", interrupting_receive)
    with pytest.raises(KeyboardInterrupt):
        _launch_with(_SOURCE, workers=2)
    monkeypatch.setattr(engine, "_receive", real_receive)

    assert _dev_shm() == shm_before
    assert _open_fds() <= fds_before
    # the pool survived the interrupt and still serves launches
    _, out = _launch_with(_SOURCE, workers=2)
    np.testing.assert_array_equal(out, np.arange(32, dtype=np.float32))


# ---------------------------------------------------------------------------
# reuse: search scoring and tune labeling on the persistent pool
# ---------------------------------------------------------------------------


def test_search_reuses_pool_and_reproduces_serial_winners():
    from repro.search import SearchOptions, run_search

    serial = run_search(
        SearchOptions(apps=("NVD-MT",), scale="test", workers=1)
    )
    parallel = run_search(
        SearchOptions(apps=("NVD-MT",), scale="test", workers=2)
    )
    assert worker_pool._SHARED is not None  # scoring went through the pool
    s, p = serial.results[0], parallel.results[0]
    assert s.winner.pipeline == p.winner.pipeline
    assert s.winner.cycles == p.winner.cycles
    assert s.baseline.cycles == p.baseline.cycles


def test_label_corpus_reuses_pool_and_reproduces_serial_labels():
    from repro.tune.label import label_corpus

    kw = dict(
        sources=("fuzz",), depth=1, scale="test",
        sample_groups=4, fuzz_count=2,
    )
    serial = label_corpus(workers=1, **kw)
    parallel = label_corpus(workers=2, **kw)
    assert worker_pool._SHARED is not None
    assert serial == parallel  # bit-for-bit labels, deterministic order
