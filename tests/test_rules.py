"""The rewrite-rule framework: registry, protocol, per-rule legality.

The load-bearing assertion is the Grover port: the ``grover`` pass is
now backed by :class:`repro.rules.DisableLocalMemoryRule`, and its
transformed IR must be bit-identical to the historical pass body on
every Table III app — the golden-report suite pins end-to-end behaviour,
this file pins the IR text itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.registry import table_apps
from repro.core.grover import GroverPass
from repro.ir.instructions import is_barrier
from repro.ir.printer import print_function
from repro.ir.types import ArrayType
from repro.rules import RULE_REGISTRY, RewriteRule, RuleContext, get_rule, register_rule, rule_names
from repro.runtime import Memory
from repro.session import Session
from repro.session.passes import PASS_REGISTRY

NEW_RULES = ("pad-local-arrays", "eliminate-barriers", "hoist-global-loads")


def _compile(source: str, name: str | None = None):
    return Session(env={}, workers=1).compile_kernel(source, name)


def _execute(kernel, global_size, local_size, in_elems: int, p: int):
    """Launch with the fuzz-oracle argument convention; returns outputs."""
    s = Session(env={}, workers=1)
    mem = Memory()
    total = int(np.prod(global_size))
    out = mem.alloc(total * 4, "out")
    data = ((np.arange(in_elems) % 13) + 1).astype(np.float32)
    inb = mem.from_array(data, "in")
    s.launch(
        kernel,
        tuple(global_size),
        tuple(local_size),
        {"out": out, "in": inb, "P": p},
        memory=mem,
    )
    return out.read(np.float32, total).copy()


def _apply_and_compare(source, name, rule_name, geometry, global_size,
                       in_elems=256, p=3, expect_rewrites=None):
    """Apply one rule; assert outputs byte-identical to the baseline."""
    baseline = _compile(source, name)
    transformed = _compile(source, name)
    rewrites = get_rule(rule_name).apply(
        transformed, RuleContext(local_size=geometry)
    )
    if expect_rewrites is not None:
        assert rewrites == expect_rewrites
    out_base = _execute(baseline, global_size, geometry, in_elems, p)
    out_new = _execute(transformed, global_size, geometry, in_elems, p)
    np.testing.assert_array_equal(
        out_base.view(np.uint8), out_new.view(np.uint8)
    )
    return transformed, rewrites


# ---------------------------------------------------------------------------
# registry and protocol
# ---------------------------------------------------------------------------


def test_all_rules_registered_with_metadata():
    assert "grover" in RULE_REGISTRY
    for name in NEW_RULES:
        assert name in RULE_REGISTRY
    for name, rule in RULE_REGISTRY.items():
        assert rule.name == name
        assert rule.description
        assert rule.legality_arbiter
        assert rule.legality
    assert len(rule_names()) >= 4


def test_every_rule_is_a_registered_pass():
    for name in rule_names():
        info = PASS_REGISTRY[name]
        assert info.rule is RULE_REGISTRY[name]
        assert info.description == RULE_REGISTRY[name].description
        assert info.legality_arbiter == RULE_REGISTRY[name].legality_arbiter
        assert info.legality == RULE_REGISTRY[name].legality


def test_non_rule_passes_carry_no_rule_metadata():
    assert PASS_REGISTRY["cse"].rule is None
    assert PASS_REGISTRY["cse"].legality_arbiter == ""


def test_register_rule_rejects_duplicates_and_anonymous():
    class Dupe(RewriteRule):
        name = "grover"

    with pytest.raises(ValueError, match="already registered"):
        register_rule(Dupe())

    class Anon(RewriteRule):
        name = ""

    with pytest.raises(ValueError, match="non-empty name"):
        register_rule(Anon())


def test_get_rule_unknown_name():
    with pytest.raises(KeyError, match="unknown rule"):
        get_rule("no-such-rule")


def test_cost_features_are_deterministic_ints():
    src = """
    __kernel void k(__global float *out, __global float *in, int P) {
        __local float tmp[64];
        int lid = get_local_id(0);
        tmp[lid] = in[lid];
        barrier(CLK_LOCAL_MEM_FENCE);
        out[get_global_id(0)] = tmp[lid] + (float)P;
    }
    """
    kernel = _compile(src)
    ctx = RuleContext(local_size=(64,))
    for rule in RULE_REGISTRY.values():
        feats = rule.cost_features(kernel, ctx)
        assert feats == rule.cost_features(kernel, ctx)
        assert all(isinstance(v, int) for v in feats.values())
        for key in ("barriers", "local_arrays", "local_bytes"):
            assert key in feats
    assert RULE_REGISTRY["grover"].cost_features(kernel, ctx)[
        "candidate_arrays"
    ] == 1
    assert RULE_REGISTRY["eliminate-barriers"].cost_features(kernel, ctx)[
        "barrier_sites"
    ] == 1


def test_veto_raises_on_decided_race():
    from repro.analysis import RaceDetected

    src = """
    __kernel void racy(__global float *out, __global float *in, int P) {
        out[0] = (float)get_local_id(0);
    }
    """
    kernel = _compile(src)
    with pytest.raises(RaceDetected, match="veto"):
        get_rule("grover").veto(kernel, RuleContext(local_size=(64,)), "test")


# ---------------------------------------------------------------------------
# the Grover port: bit-identical IR on every app
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("app", table_apps(), ids=lambda a: a.id)
def test_grover_rule_port_bit_identical(app):
    from repro.apps.harness import compile_app

    with Session(env={}, workers=1).activate():
        via_rule, _ = compile_app(app, "with")
        legacy, _ = compile_app(app, "with")
    n_rule = int(PASS_REGISTRY["grover"].run(via_rule))
    # the historical registered pass body, verbatim
    report = GroverPass(allow_partial=True).run(legacy)
    n_legacy = sum(len(r.lls) for r in report.transformed)
    assert n_rule == n_legacy
    assert print_function(via_rule) == print_function(legacy)


def test_grover_rule_idempotent_on_kernel_without_local():
    src = """
    __kernel void plain(__global float *out, __global float *in, int P) {
        out[get_global_id(0)] = in[get_global_id(0)] * (float)P;
    }
    """
    kernel = _compile(src)
    ctx = RuleContext()
    assert not get_rule("grover").probe(kernel, ctx)
    assert get_rule("grover").apply(kernel, ctx) == 0


# ---------------------------------------------------------------------------
# local-array padding
# ---------------------------------------------------------------------------

PAD_SRC = """
__kernel void pad(__global float *out, __global float *in, int P) {
    __local float tile[16][16];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    tile[ly][lx] = in[ly * 16 + lx];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(1) * 16 + get_global_id(0)] = tile[lx][ly] * (float)P;
}
"""


def test_padding_pads_bank_aliasing_array():
    kernel, rewrites = _apply_and_compare(
        PAD_SRC, "pad", "pad-local-arrays", (16, 16), (16, 16),
        expect_rewrites=1,
    )
    (la,) = kernel.local_arrays
    assert la.array_type.dims() == (16, 17)
    inner = la.array_type.element
    assert isinstance(inner, ArrayType) and inner.count == 17


def test_padding_is_idempotent():
    kernel = _compile(PAD_SRC, "pad")
    ctx = RuleContext(local_size=(16, 16))
    assert get_rule("pad-local-arrays").apply(kernel, ctx) == 1
    # 17 floats/row no longer alias the bank line: nothing left to pad
    assert get_rule("pad-local-arrays").apply(kernel, ctx) == 0


def test_padding_skips_non_aliasing_rows():
    src = PAD_SRC.replace("tile[16][16]", "tile[16][15]").replace(
        "ly * 16 + lx", "ly * 15 + lx"
    )
    kernel = _compile(src, "pad")
    assert get_rule("pad-local-arrays").apply(
        kernel, RuleContext(local_size=(15, 16))
    ) == 0


def test_padding_rejects_unprovable_indices():
    # (lx + P) % 16 is in bounds at runtime but opaque to the affine
    # arbiter — padding would re-map addresses it cannot bound, so the
    # array must be left alone
    src = PAD_SRC.replace("tile[lx][ly]", "tile[(lx + P) % 16][ly]")
    kernel = _compile(src, "pad")
    assert get_rule("pad-local-arrays").apply(
        kernel, RuleContext(local_size=(16, 16))
    ) == 0


def test_padding_needs_geometry():
    kernel = _compile(PAD_SRC, "pad")
    # no launch geometry, no reqd_work_group_size: bounds are unprovable
    assert get_rule("pad-local-arrays").apply(kernel, RuleContext()) == 0


# ---------------------------------------------------------------------------
# barrier elimination
# ---------------------------------------------------------------------------

SELF_STAGE_SRC = """
__kernel void selfstage(__global float *out, __global float *in, int P) {
    __local float tmp[64];
    int lid = get_local_id(0);
    tmp[lid] = in[lid] * 2.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = tmp[lid] + (float)P;
}
"""


def _barrier_count(fn) -> int:
    return sum(1 for inst in fn.instructions() if is_barrier(inst))


def test_barrier_elimination_removes_single_phase_barrier():
    kernel, _ = _apply_and_compare(
        SELF_STAGE_SRC, "selfstage", "eliminate-barriers", (64,), (64,),
        in_elems=64, expect_rewrites=1,
    )
    assert _barrier_count(kernel) == 0


def test_barrier_elimination_keeps_cross_item_barrier():
    src = SELF_STAGE_SRC.replace("tmp[lid] + ", "tmp[63 - lid] + ")
    kernel = _compile(src, "selfstage")
    assert get_rule("eliminate-barriers").apply(
        kernel, RuleContext(local_size=(64,))
    ) == 0
    assert _barrier_count(kernel) == 1


def test_barrier_elimination_requires_decided_analysis():
    # without geometry the cross-item pairs stay undecided, and an
    # undecided pair means the barrier cannot be proven redundant
    src = SELF_STAGE_SRC.replace("tmp[lid] + ", "tmp[63 - lid] + ")
    kernel = _compile(src, "selfstage")
    assert get_rule("eliminate-barriers").apply(kernel, RuleContext()) == 0


# ---------------------------------------------------------------------------
# loop-invariant global-load hoisting
# ---------------------------------------------------------------------------

HOIST_SRC = """
__kernel void hoisty(__global float *out, __global float *in, int P) {
    float s = 0.0f;
    for (int i = 0; i < P; i++) {
        s += in[get_local_id(0)];
    }
    out[get_global_id(0)] = s;
}
"""


def _in_loop_global_loads(fn) -> int:
    return RULE_REGISTRY["hoist-global-loads"].cost_features(
        fn, RuleContext()
    )["in_loop_global_loads"]


def test_hoist_moves_invariant_load_out_of_loop():
    kernel, _ = _apply_and_compare(
        HOIST_SRC, "hoisty", "hoist-global-loads", (64,), (64,),
        in_elems=64, p=5, expect_rewrites=1,
    )
    assert _in_loop_global_loads(kernel) == 0
    # idempotent: nothing left in the loop
    assert get_rule("hoist-global-loads").apply(kernel, RuleContext()) == 0


def test_hoist_skips_buffers_that_are_stored_to():
    src = HOIST_SRC.replace(
        "out[get_global_id(0)] = s;",
        "in[get_global_id(0)] = s;\n    out[get_global_id(0)] = s;",
    )
    kernel = _compile(src, "hoisty")
    assert _in_loop_global_loads(kernel) == 1
    assert get_rule("hoist-global-loads").apply(kernel, RuleContext()) == 0


def test_hoist_skips_loop_varying_addresses():
    src = HOIST_SRC.replace("in[get_local_id(0)]", "in[i]")
    kernel = _compile(src, "hoisty")
    assert get_rule("hoist-global-loads").apply(kernel, RuleContext()) == 0
    assert _in_loop_global_loads(kernel) == 1
