"""Fast-path cache simulation must be bit-identical to the reference.

The vectorised simulator in ``repro.perf.fastcache`` is only allowed to
change wall-clock time, never a modeled number: these tests drive both
implementations with the same randomized streams (strided, column,
streaming and uniform-random patterns, plus warm fills and chunked
incremental access) and require identical per-access hit masks,
``CacheStats`` and ``HierarchyCounts`` — including the next-line
prefetcher's 4 KiB page-boundary rule.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.perf.cache import CacheHierarchy, SetAssocCache
from repro.perf.fastcache import (
    FastCacheHierarchy,
    FastSetAssocCache,
    cache_backend,
    lru_hits,
    make_hierarchy,
    set_cache_backend,
)

# -- stream generators ----------------------------------------------------------


def _pattern_stream(pattern: str, n: int, stride: int, span: int) -> np.ndarray:
    i = np.arange(n, dtype=np.int64)
    if pattern == "streaming":
        return i % span
    if pattern == "strided":
        return (i * stride) % span
    if pattern == "column":
        # row-major matrix walked down a column: large power-of-two-ish
        # stride, the paper's conflict-miss workhorse
        return (i * 64) % span
    raise AssertionError(pattern)


pattern_st = st.sampled_from(["streaming", "strided", "column"])


# -- single level ---------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    pattern=pattern_st,
    n=st.integers(1, 300),
    stride=st.integers(1, 17),
    span=st.integers(1, 4096),
    size_kb=st.sampled_from([0.5, 1, 2, 4]),
    assoc=st.sampled_from([1, 2, 4, 8]),
)
def test_single_level_matches_reference(pattern, n, stride, span, size_kb, assoc):
    lines = _pattern_stream(pattern, n, stride, span)
    ref = SetAssocCache(size_kb, assoc)
    fast = FastSetAssocCache(size_kb, assoc)
    ref_hits = np.array([ref.access(int(l)) for l in lines.tolist()])
    fast_hits = fast.access_many(lines)
    assert np.array_equal(ref_hits, fast_hits)
    assert (ref.stats.accesses, ref.stats.hits) == (
        fast.stats.accesses,
        fast.stats.hits,
    )


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(0, 250),
    n_chunks=st.integers(1, 5),
    warm=st.integers(0, 30),
    assoc=st.sampled_from([2, 4, 8]),
)
def test_random_stream_with_fills_and_chunks(seed, n, n_chunks, warm, assoc):
    """Uniform-random lines, warm fills first, then incremental batches."""
    rng = np.random.default_rng(seed)
    lines = rng.integers(0, 300, n).astype(np.int64)
    warm_lines = rng.integers(0, 300, warm).astype(np.int64)
    ref = SetAssocCache(1, assoc)
    fast = FastSetAssocCache(1, assoc)
    for w in warm_lines.tolist():
        ref.fill(w)
    fast.fill_many(warm_lines)
    ref_hits = np.array([ref.access(int(l)) for l in lines.tolist()], dtype=bool)
    cuts = np.sort(rng.integers(0, n + 1, n_chunks - 1))
    chunks = [c for c in np.split(lines, cuts)]
    got = [fast.access_many(c) for c in chunks]
    fast_hits = np.concatenate(got) if got else np.zeros(0, bool)
    assert np.array_equal(ref_hits, fast_hits)
    assert (ref.stats.accesses, ref.stats.hits) == (
        fast.stats.accesses,
        fast.stats.hits,
    )


def test_scalar_shims():
    ref = SetAssocCache(0.5, 2)
    fast = FastSetAssocCache(0.5, 2)
    for line in [1, 2, 1, 9, 17, 1, 2]:
        assert ref.access(line) == fast.access(line)
    ref.fill(5)
    fast.fill(5)
    assert ref.access(5) == fast.access(5) is True
    assert (ref.stats.accesses, ref.stats.hits) == (
        fast.stats.accesses,
        fast.stats.hits,
    )


def test_lru_hits_empty_stream():
    assert lru_hits(np.empty(0, np.int64), 8, 2).shape == (0,)


def test_conflicted_set_exact_eviction_order():
    """A 2-way set cycled through 3 lines must miss every time."""
    lines = np.array([0, 8, 16, 0, 8, 16, 0, 8, 16], dtype=np.int64)
    hits = lru_hits(lines, 8, 2)  # all map to set 0
    assert not hits.any()
    # with 3 ways everything after the first round hits
    hits3 = lru_hits(lines, 8, 3)
    assert hits3.sum() == 6


# -- hierarchy (incl. prefetch page rule) --------------------------------------


def _hier_pair(specs, prefetch):
    ref = CacheHierarchy([SetAssocCache(*s) for s in specs], prefetch=prefetch)
    fast = FastCacheHierarchy(
        [FastSetAssocCache(*s) for s in specs], prefetch=prefetch
    )
    return ref, fast


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    pattern=st.sampled_from(["streaming", "strided", "column", "random"]),
    n=st.integers(1, 400),
    prefetch=st.booleans(),
    warm=st.integers(0, 25),
)
def test_hierarchy_counts_match(seed, pattern, n, prefetch, warm):
    rng = np.random.default_rng(seed)
    if pattern == "random":
        lines = rng.integers(0, 400, n).astype(np.int64)
    else:
        lines = _pattern_stream(pattern, n, int(rng.integers(1, 9)), 311)
    specs = [(1, 2, 64, "L1"), (4, 8, 64, "L2")]
    ref, fast = _hier_pair(specs, prefetch)
    warm_lines = np.unique(rng.integers(0, 100, warm)).astype(np.int64)
    ref.fill(warm_lines)
    fast.fill(warm_lines)
    a, b = ref.run(lines), fast.run(lines)
    assert a.level_hits == b.level_hits
    assert a.memory == b.memory
    assert a.prefetched == b.prefetched
    assert a.total == b.total == len(lines)


def test_prefetch_page_boundary_rule():
    """Sequential misses prefetch, except the first line of a 4 KiB page."""
    # 64-byte lines -> 64 lines per page; a long cold streaming run
    lines = np.arange(0, 130, dtype=np.int64)
    specs = [(0.5, 1, 64, "L1")]
    ref, fast = _hier_pair(specs, prefetch=True)
    a, b = ref.run(lines), fast.run(lines)
    assert (a.memory, a.prefetched) == (b.memory, b.prefetched)
    # misses at lines 64 and 128 start new pages: not prefetched
    assert a.prefetched == 130 - 1 - 2


# -- backend plumbing -----------------------------------------------------------


def test_make_hierarchy_backends():
    specs = [(1, 2, 64, "L1")]
    assert isinstance(make_hierarchy(specs, backend="fast"), FastCacheHierarchy)
    assert isinstance(make_hierarchy(specs, backend="reference"), CacheHierarchy)
    with pytest.raises(ValueError):
        make_hierarchy(specs, backend="nope")


def test_set_cache_backend_roundtrip():
    prev = set_cache_backend("reference")
    try:
        assert cache_backend() == "reference"
        specs = [(1, 2, 64, "L1")]
        assert isinstance(make_hierarchy(specs), CacheHierarchy)
    finally:
        set_cache_backend(prev)
    assert cache_backend() == prev


def test_env_var_overrides_backend(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_BACKEND", "reference")
    assert cache_backend() == "reference"
    monkeypatch.setenv("REPRO_CACHE_BACKEND", "bogus")
    with pytest.raises(ValueError):
        cache_backend()


def test_reset_clears_history():
    fast = FastSetAssocCache(0.5, 2)
    fast.access_many(np.array([1, 2, 3], dtype=np.int64))
    fast.reset()
    assert fast.stats.accesses == 0
    # after reset, line 1 is cold again
    assert not fast.access_many(np.array([1], dtype=np.int64))[0]
