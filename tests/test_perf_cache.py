"""Unit tests for the cache simulator and access-stream helpers."""

import numpy as np
import pytest

from repro.perf.cache import (
    CacheHierarchy,
    SetAssocCache,
    collapse_consecutive,
)


class TestSetAssocCache:
    def test_cold_miss_then_hit(self):
        c = SetAssocCache(1, 2, 64)  # 1 KiB, 2-way: 8 sets
        assert not c.access(5)
        assert c.access(5)
        assert c.stats.accesses == 2 and c.stats.hits == 1

    def test_lru_eviction(self):
        c = SetAssocCache(size_kb=64 / 1024 * 2, assoc=2, line_size=64)  # 1 set...
        c = SetAssocCache(0.125, 2, 64)  # 2 lines total: 1 set, 2-way
        assert c.n_sets == 1
        c.access(1)
        c.access(2)
        c.access(1)      # 1 becomes MRU
        c.access(3)      # evicts 2 (LRU)
        assert c.access(1)
        assert not c.access(2)

    def test_set_conflicts_with_power_of_two_stride(self):
        """Lines 64 sets apart in a 64-set cache all collide — the paper's
        column-access pathology."""
        c = SetAssocCache(32, 8, 64)  # 32 KiB / 64 B / 8-way = 64 sets
        lines = [i * 64 for i in range(16)]  # same set index
        for l in lines:
            c.access(l)
        # revisit: 16 lines > 8 ways -> all miss again
        hits = sum(c.access(l) for l in lines)
        assert hits == 0

    def test_spread_stride_fits(self):
        c = SetAssocCache(32, 8, 64)
        lines = [i * 65 for i in range(16)]  # different sets
        for l in lines:
            c.access(l)
        hits = sum(c.access(l) for l in lines)
        assert hits == 16

    def test_fill_does_not_count(self):
        c = SetAssocCache(1, 2, 64)
        c.fill(7)
        assert c.stats.accesses == 0
        assert c.access(7)

    def test_reset(self):
        c = SetAssocCache(1, 2, 64)
        c.access(1)
        c.reset()
        assert c.stats.accesses == 0
        assert not c.access(1)

    def test_hit_rate(self):
        c = SetAssocCache(1, 2, 64)
        c.access(1)
        c.access(1)
        assert c.stats.hit_rate == 0.5
        assert SetAssocCache(1, 2).stats.hit_rate == 0.0


class TestCollapse:
    def test_consecutive_duplicates_dropped(self):
        lines = np.array([1, 1, 1, 2, 2, 1, 3])
        np.testing.assert_array_equal(collapse_consecutive(lines), [1, 2, 1, 3])

    def test_empty(self):
        assert len(collapse_consecutive(np.array([], dtype=np.int64))) == 0

    def test_no_duplicates_unchanged(self):
        lines = np.arange(5)
        np.testing.assert_array_equal(collapse_consecutive(lines), lines)


class TestHierarchy:
    def _hier(self, prefetch=True):
        return CacheHierarchy(
            [SetAssocCache(0.25, 4, 64), SetAssocCache(1, 4, 64)], prefetch=prefetch
        )

    def test_levels_counted(self):
        h = self._hier()
        counts = h.run(np.array([1, 1, 1]))
        assert counts.memory == 1
        assert counts.level_hits == [2, 0]
        assert counts.total == 3

    def test_l2_catches_l1_evictions(self):
        h = self._hier()
        # L1 = 4 lines (1 set x 4? 0.25KB/64 = 4 lines, 1 set 4-way)
        stream = np.array([0, 1, 2, 3, 4, 0])  # 5 lines thrash L1 set
        counts = h.run(stream)
        assert counts.level_hits[1] >= 1  # the re-access of 0 hits L2

    def test_prefetch_detected_for_sequential_misses(self):
        h = self._hier()
        stream = np.arange(100, 110)  # sequential lines, all cold misses
        counts = h.run(stream)
        assert counts.memory == 10
        assert counts.prefetched >= 8

    def test_prefetch_stops_at_page_boundary(self):
        h = self._hier()
        # lines 63,64 cross the 4 KiB page boundary (64 lines/page)
        counts = h.run(np.array([63, 64]))
        assert counts.prefetched == 0

    def test_prefetch_disabled(self):
        h = self._hier(prefetch=False)
        counts = h.run(np.arange(50, 60))
        assert counts.prefetched == 0

    def test_strided_stream_not_prefetched(self):
        h = self._hier()
        counts = h.run(np.arange(0, 640, 64))
        assert counts.prefetched == 0
