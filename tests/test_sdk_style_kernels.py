"""Kernels written the way the real SDKs write them — macro-heavy.

The NVIDIA SDK oclMatrixMul kernel addresses its flat local tiles
through ``AS(i, j)`` / ``BS(i, j)`` function-like macros; this file
checks the whole pipeline (preprocessor -> Grover -> runtime) on that
authentic source shape.
"""

import numpy as np
import pytest

from repro.core import GroverPass, disable_local_memory
from repro.frontend import compile_kernel

from tests.conftest import execute_kernel

SDK_MM = r"""
#define BLOCK_SIZE 16
#define AS(i, j) As[(i)*BLOCK_SIZE + (j)]
#define BS(i, j) Bs[(i)*BLOCK_SIZE + (j)]

__kernel void matrixMul(__global float* C, __global float* A,
                        __global float* B, int uiWA, int uiWB)
{
    __local float As[BLOCK_SIZE * BLOCK_SIZE];
    __local float Bs[BLOCK_SIZE * BLOCK_SIZE];

    int bx = get_group_id(0);
    int by = get_group_id(1);
    int tx = get_local_id(0);
    int ty = get_local_id(1);

    int aBegin = uiWA * BLOCK_SIZE * by;
    int aStep  = BLOCK_SIZE;
    int bBegin = BLOCK_SIZE * bx;
    int bStep  = BLOCK_SIZE * uiWB;

    float Csub = 0.0f;
    int b = bBegin;
    for (int a = aBegin; a < aBegin + uiWA; a += aStep) {
        AS(ty, tx) = A[a + uiWA * ty + tx];
        BS(ty, tx) = B[b + uiWB * ty + tx];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int k = 0; k < BLOCK_SIZE; ++k)
            Csub += AS(ty, k) * BS(k, tx);
        barrier(CLK_LOCAL_MEM_FENCE);
        b += bStep;
    }
    C[get_global_id(1) * uiWB + get_global_id(0)] = Csub;
}
"""


def run_mm(fn, m=32, k=48, n=32):
    rng = np.random.default_rng(8)
    a = rng.random((m, k), dtype=np.float32)
    b = rng.random((k, n), dtype=np.float32)
    _, outs = execute_kernel(
        fn,
        {"A": a, "B": b, "uiWA": k, "uiWB": n},
        (n, m),
        (16, 16),
        {"C": (np.float32, (m, n))},
    )
    return outs["C"], a @ b


class TestSDKMatrixMul:
    def test_compiles_and_runs(self):
        fn = compile_kernel(SDK_MM)
        got, want = run_mm(fn)
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)

    def test_grover_reverses_macro_indices(self):
        """The macro-flattened tile indices solve like the explicit ones.

        Note the GL indices here use *mutable pointer-walk variables*
        (``a``/``b`` accumulate strides across the tile loop) — a
        different authoring style than our apps' closed-form indices,
        which Grover handles through its loop-variable leaves.
        """
        fn = compile_kernel(SDK_MM)
        report = disable_local_memory(fn)
        assert report.fully_disabled
        assert not fn.local_arrays
        sols = {
            (rec.name,): {ll.solution.render() for ll in rec.lls}
            for rec in report.records
        }
        assert any("lx = k" in s for s in sols[("As",)])
        assert any("ly = k" in s for s in sols[("Bs",)])
        got, want = run_mm(fn)
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)

    def test_selective_removal_on_sdk_source(self):
        for arrays, removed in ((["As"], "As"), (["Bs"], "Bs")):
            fn = compile_kernel(SDK_MM)
            GroverPass(arrays=arrays).run(fn)
            names = {la.name for la in fn.local_arrays}
            assert removed not in names and len(names) == 1
            got, want = run_mm(fn)
            np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)
