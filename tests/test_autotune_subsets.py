"""Tests for the subset tuner (the paper's auto-tuning framework)."""

import math

import numpy as np
import pytest

from repro.autotune import (
    autotune_subsets,
    removable_arrays,
    specialize_per_platform,
)

from tests.conftest import MM_SOURCE, MT_SOURCE, REDUCTION_SOURCE


def mm_inputs(m=32, k=64, n=64):
    rng = np.random.default_rng(9)
    return {
        "A": rng.random((m, k), dtype=np.float32),
        "B": rng.random((k, n), dtype=np.float32),
        "C": np.zeros((m, n), dtype=np.float32),
        "wA": k,
        "wB": n,
    }, (n, m)


class TestRemovableArrays:
    def test_mm_has_two(self):
        assert removable_arrays(MM_SOURCE) == ["As", "Bs"]

    def test_mt_has_one(self):
        assert removable_arrays(MT_SOURCE) == ["lm"]

    def test_reduction_has_none(self):
        assert removable_arrays(REDUCTION_SOURCE) == []


class TestSubsetTuning:
    def test_enumerates_power_set(self):
        inputs, gsize = mm_inputs()
        res = autotune_subsets(MM_SOURCE, "SNB", gsize, (16, 16), inputs)
        labels = {v.removed for v in res.variants}
        assert labels == {(), ("As",), ("Bs",), ("As", "Bs")}

    def test_original_speedup_is_one(self):
        inputs, gsize = mm_inputs()
        res = autotune_subsets(MM_SOURCE, "SNB", gsize, (16, 16), inputs)
        base = next(v for v in res.variants if v.removed == ())
        assert base.speedup == pytest.approx(1.0)

    def test_best_is_max_speedup(self):
        inputs, gsize = mm_inputs()
        res = autotune_subsets(MM_SOURCE, "SNB", gsize, (16, 16), inputs)
        best = res.best
        assert best.ok
        assert best.speedup == max(v.speedup for v in res.variants if v.ok)

    def test_gpu_keeps_local_memory_for_mt(self):
        n = 64
        rng = np.random.default_rng(0)
        inputs = {
            "in": rng.random((n, n), dtype=np.float32),
            "out": np.zeros((n, n), dtype=np.float32),
            "W": n,
            "H": n,
        }
        res = autotune_subsets(MT_SOURCE, "Fermi", (n, n), (16, 16), inputs)
        assert res.best.removed == ()

    def test_cpu_removes_local_memory_for_mt(self):
        n = 64
        rng = np.random.default_rng(0)
        inputs = {
            "in": rng.random((n, n), dtype=np.float32),
            "out": np.zeros((n, n), dtype=np.float32),
            "W": n,
            "H": n,
        }
        res = autotune_subsets(MT_SOURCE, "SNB", (n, n), (16, 16), inputs)
        assert res.best.removed == ("lm",)

    def test_render(self):
        inputs, gsize = mm_inputs()
        res = autotune_subsets(MM_SOURCE, "SNB", gsize, (16, 16), inputs)
        text = res.render()
        assert "(original)" in text
        assert "As+Bs" in text
        assert "*" in text


class TestSpecializePerPlatform:
    def test_multiple_devices(self):
        n = 64
        rng = np.random.default_rng(0)
        inputs = {
            "in": rng.random((n, n), dtype=np.float32),
            "out": np.zeros((n, n), dtype=np.float32),
            "W": n,
            "H": n,
        }
        results = specialize_per_platform(
            MT_SOURCE, ["SNB", "Fermi"], (n, n), (16, 16), inputs
        )
        assert set(results) == {"SNB", "Fermi"}
        # the paper's point: the specialisation differs per platform
        assert results["SNB"].best.removed != results["Fermi"].best.removed
