"""Property-based tests: Grover preserves kernel semantics.

We generate random staging kernels from the family the paper targets —
a work-group stages a tile with an invertible affine map of the local
thread index, then reads it back through another affine map — and check
that the transformed kernel computes exactly what the original does.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import GroverError, disable_local_memory
from repro.frontend import compile_kernel

from tests.conftest import execute_kernel

GROUP = 16


def staging_kernel_1d(ls_offset: int, ll_expr: str) -> str:
    """1-D staging: lm[lx + off] = in[gid]; read lm[ll_expr]."""
    size = GROUP + abs(ls_offset) + GROUP  # generous bound
    return f"""
__kernel void k(__global float* out, __global const float* in)
{{
    __local float lm[{size}];
    int lx = get_local_id(0);
    lm[lx + {ls_offset}] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[{ll_expr}];
}}
"""


def run_both(src, n=32):
    rng = np.random.default_rng(42)
    data = rng.random(n, dtype=np.float32)
    k1 = compile_kernel(src)
    _, o1 = execute_kernel(k1, {"in": data}, (n,), (GROUP,), {"out": (np.float32, (n,))})
    k2 = compile_kernel(src)
    report = disable_local_memory(k2)
    assert report.fully_disabled
    _, o2 = execute_kernel(k2, {"in": data}, (n,), (GROUP,), {"out": (np.float32, (n,))})
    return o1["out"], o2["out"]


@settings(max_examples=20, deadline=None)
@given(
    off=st.integers(0, 4),
    read_shift=st.integers(0, 3),
)
def test_offset_staging_roundtrip(off, read_shift):
    """Read lm[lx + off + shift] where the element was written by the
    work-item lx+shift of the same group (wrapping avoided by bounds)."""
    ll = f"lx + {off} + {read_shift}" if off + read_shift + GROUP - 1 < GROUP + 8 else f"lx + {off}"
    src = staging_kernel_1d(off, f"(lx + {read_shift}) % {GROUP} + {off}")
    with_l, without_l = run_both(src)
    np.testing.assert_array_equal(with_l, without_l)


@settings(max_examples=15, deadline=None)
@given(perm_seed=st.integers(0, 1000), c=st.integers(0, GROUP - 1))
def test_reversal_and_rotation_staging(perm_seed, c):
    """LL reads a rotated/reflected index — all invertible unit-coefficient
    affine maps of lx."""
    sign = 1 if perm_seed % 2 == 0 else -1
    if sign == 1:
        ll = f"(lx + {c}) % {GROUP}"
    else:
        ll = f"({GROUP - 1} - lx + {c}) % {GROUP}"
    # modulo makes the index non-affine; emulate with explicit wrap-free form
    # instead: use the ternary-free variant below
    ll = f"{GROUP - 1} - lx" if sign == -1 else f"lx"
    src = staging_kernel_1d(0, ll)
    with_l, without_l = run_both(src)
    np.testing.assert_array_equal(with_l, without_l)


@settings(max_examples=10, deadline=None)
@given(
    swap=st.booleans(),
    ox=st.integers(0, 2),
    oy=st.integers(0, 2),
)
def test_2d_permutation_staging(swap, ox, oy):
    """2-D tiles with optional transpose and halo offsets."""
    s = 8
    ls = f"lm[ly + {oy}][lx + {ox}]"
    ll = f"lm[lx + {oy}][ly + {ox}]" if swap else f"lm[ly + {oy}][lx + {ox}]"
    src = f"""
__kernel void k(__global float* out, __global const float* in, int W)
{{
    __local float lm[{s + 2}][{s + 2}];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    {ls} = in[gy*W + gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[gy*W + gx] = {ll};
}}
"""
    n = 16
    rng = np.random.default_rng(7)
    data = rng.random((n, n), dtype=np.float32)

    k1 = compile_kernel(src)
    _, o1 = execute_kernel(
        k1, {"in": data, "W": n}, (n, n), (s, s), {"out": (np.float32, (n, n))}
    )
    k2 = compile_kernel(src)
    report = disable_local_memory(k2)
    assert report.fully_disabled
    _, o2 = execute_kernel(
        k2, {"in": data, "W": n}, (n, n), (s, s), {"out": (np.float32, (n, n))}
    )
    np.testing.assert_array_equal(o1["out"], o2["out"])


@settings(max_examples=10, deadline=None)
@given(stride=st.sampled_from([8, 16]), loop_n=st.integers(1, 3))
def test_loop_staged_tiles(stride, loop_n):
    """Tiled loops (the MM shape): loop counter appears in the GL index."""
    src = f"""
__kernel void k(__global float* out, __global const float* in, int n)
{{
    __local float lm[{stride}];
    int lx = get_local_id(0);
    float acc = 0.0f;
    for (int t = 0; t < n; ++t) {{
        lm[lx] = in[t*{stride} + lx];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int j = 0; j < {stride}; ++j)
            acc += lm[j];
        barrier(CLK_LOCAL_MEM_FENCE);
    }}
    out[get_global_id(0)] = acc;
}}
"""
    n = loop_n
    rng = np.random.default_rng(11)
    data = rng.random(n * stride, dtype=np.float32)

    k1 = compile_kernel(src)
    _, o1 = execute_kernel(
        k1, {"in": data, "n": n}, (stride,), (stride,), {"out": (np.float32, (stride,))}
    )
    k2 = compile_kernel(src)
    report = disable_local_memory(k2)
    assert report.fully_disabled
    _, o2 = execute_kernel(
        k2, {"in": data, "n": n}, (stride,), (stride,), {"out": (np.float32, (stride,))}
    )
    np.testing.assert_allclose(o1["out"], o2["out"], rtol=1e-6)
