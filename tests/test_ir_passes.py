"""Unit tests for the IR clean-up passes (mem2reg-lite, folding, CSE, LICM)."""

import numpy as np
import pytest

from repro.frontend import compile_kernel
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.instructions import Alloca, BinOp, Call, Load, Opcode, Store
from repro.ir.passes import (
    common_subexpression_elimination,
    fold_constants,
    loop_invariant_code_motion,
    promote_single_store_slots,
)
from repro.ir.types import FLOAT, I32, I64
from repro.ir.values import Constant
from repro.ir.verifier import verify_function

from tests.conftest import execute_kernel


def count_insts(fn, kind=None):
    return sum(
        1
        for i in fn.instructions()
        if kind is None or isinstance(i, kind)
    )


class TestPromoteSlots:
    def test_single_store_slot_promoted(self):
        fn = Function("f", [I32], ["n"])
        b = IRBuilder(fn.add_block("entry"))
        slot = b.alloca(I32, "x")
        b.store(fn.arg("n"), slot)
        v = b.load(slot)
        b.add(v, Constant(I32, 1))
        b.ret()
        assert promote_single_store_slots(fn) == 1
        assert count_insts(fn, Alloca) == 0
        assert count_insts(fn, Load) == 0
        verify_function(fn)

    def test_multi_store_slot_kept(self):
        fn = Function("f", [I32], ["n"])
        b = IRBuilder(fn.add_block("entry"))
        slot = b.alloca(I32, "x")
        b.store(Constant(I32, 0), slot)
        b.store(fn.arg("n"), slot)
        b.load(slot)
        b.ret()
        assert promote_single_store_slots(fn) == 0
        assert count_insts(fn, Alloca) == 1

    def test_store_outside_entry_not_promoted(self):
        fn = Function("f", [I32], ["n"])
        entry = fn.add_block("entry")
        nxt = fn.add_block("next")
        b = IRBuilder(entry)
        slot = b.alloca(I32, "x")
        b.br(nxt)
        b.position_at_end(nxt)
        b.store(fn.arg("n"), slot)
        b.load(slot)
        b.ret()
        assert promote_single_store_slots(fn) == 0

    def test_load_before_store_not_promoted(self):
        fn = Function("f", [I32], ["n"])
        b = IRBuilder(fn.add_block("entry"))
        slot = b.alloca(I32, "x")
        b.load(slot)  # reads uninitialised value
        b.store(fn.arg("n"), slot)
        b.ret()
        assert promote_single_store_slots(fn) == 0


class TestFoldConstants:
    def test_arithmetic_folds(self):
        fn = Function("f", [], [])
        b = IRBuilder(fn.add_block("entry"))
        v = b.mul(Constant(I32, 6), Constant(I32, 7))
        w = b.add(v, Constant(I32, 0))
        slot = b.alloca(I32)
        b.store(w, slot)
        b.ret()
        fold_constants(fn)
        stores = [i for i in fn.instructions() if isinstance(i, Store)]
        assert isinstance(stores[0].value, Constant)
        assert stores[0].value.value == 42

    def test_division_by_zero_not_folded(self):
        fn = Function("f", [], [])
        b = IRBuilder(fn.add_block("entry"))
        v = b.sdiv(Constant(I32, 1), Constant(I32, 0))
        slot = b.alloca(I32)
        b.store(v, slot)
        b.ret()
        fold_constants(fn)  # must not crash
        assert count_insts(fn, BinOp) == 1

    def test_shift_folds(self):
        fn = Function("f", [], [])
        b = IRBuilder(fn.add_block("entry"))
        v = b.binop(Opcode.SHL, Constant(I32, 1), Constant(I32, 4))
        slot = b.alloca(I32)
        b.store(v, slot)
        b.ret()
        fold_constants(fn)
        stores = [i for i in fn.instructions() if isinstance(i, Store)]
        assert stores[0].value.value == 16


class TestCSE:
    def test_duplicate_binops_merged(self):
        fn = Function("f", [I32, I32], ["a", "b"])
        b = IRBuilder(fn.add_block("entry"))
        x = b.add(fn.arg("a"), fn.arg("b"))
        y = b.add(fn.arg("a"), fn.arg("b"))
        slot = b.alloca(I32)
        b.store(x, slot)
        b.store(y, slot)
        b.ret()
        assert common_subexpression_elimination(fn) == 1
        stores = [i for i in fn.instructions() if isinstance(i, Store)]
        assert stores[0].value is stores[1].value
        verify_function(fn)

    def test_pure_calls_merged(self):
        fn = Function("f", [], [])
        b = IRBuilder(fn.add_block("entry"))
        c1 = b.call("get_local_id", [Constant(I32, 0)], I64)
        c2 = b.call("get_local_id", [Constant(I32, 0)], I64)
        x = b.add(c1, c2)
        slot = b.alloca(I64)
        b.store(x, slot)
        b.ret()
        assert common_subexpression_elimination(fn) == 1

    def test_different_dims_not_merged(self):
        fn = Function("f", [], [])
        b = IRBuilder(fn.add_block("entry"))
        c1 = b.call("get_local_id", [Constant(I32, 0)], I64)
        c2 = b.call("get_local_id", [Constant(I32, 1)], I64)
        x = b.add(c1, c2)
        slot = b.alloca(I64)
        b.store(x, slot)
        b.ret()
        assert common_subexpression_elimination(fn) == 0

    def test_loads_never_merged(self):
        fn = Function("f", [], [])
        b = IRBuilder(fn.add_block("entry"))
        slot = b.alloca(I32, "x")
        b.store(Constant(I32, 1), slot)
        l1 = b.load(slot)
        l2 = b.load(slot)
        out = b.alloca(I32)
        b.store(b.add(l1, l2), out)
        b.ret()
        assert common_subexpression_elimination(fn) == 0

    def test_only_dominating_values_reused(self):
        fn = Function("f", [I32, I32], ["a", "b"])
        entry = fn.add_block("entry")
        t = fn.add_block("t")
        e = fn.add_block("e")
        m = fn.add_block("m")
        b = IRBuilder(entry)
        cond = b.icmp("eq", fn.arg("a"), fn.arg("b"))
        b.cond_br(cond, t, e)
        bt = IRBuilder(t)
        x = bt.add(fn.arg("a"), fn.arg("b"))
        st1 = bt.alloca(I32)
        bt.store(x, st1)
        bt.br(m)
        be = IRBuilder(e)
        y = be.add(fn.arg("a"), fn.arg("b"))  # same expr, sibling branch
        st2 = be.alloca(I32)
        be.store(y, st2)
        be.br(m)
        IRBuilder(m).ret()
        # neither branch dominates the other: no merge allowed
        assert common_subexpression_elimination(fn) == 0
        verify_function(fn)


class TestLICM:
    SRC = r"""
__kernel void k(__global float* out, __global const float* in, int n) {
    int gid = get_global_id(0);
    float acc = 0.0f;
    for (int i = 0; i < n; ++i) {
        acc += in[gid*4 + (i & 3)];
    }
    out[gid] = acc;
}
"""

    def test_hoists_loop_invariant_mul(self):
        kernel = compile_kernel(self.SRC, optimize=False)
        loop_invariant_code_motion(kernel)
        verify_function(kernel)
        # gid*4 must now be outside the loop: find the mul and check its block
        from repro.ir.cfg import natural_loops

        loops = natural_loops(kernel)
        assert loops
        body = loops[0].body
        muls = [
            i
            for i in kernel.instructions()
            if isinstance(i, BinOp) and i.opcode == Opcode.MUL
        ]
        assert muls and all(m.parent not in body for m in muls)

    def test_semantics_preserved(self):
        n = 8
        rng = np.random.default_rng(3)
        data = rng.random(64 * 4, dtype=np.float32)

        k1 = compile_kernel(self.SRC, optimize=False)
        _, out1 = execute_kernel(
            k1, {"in": data, "n": n}, (64,), (16,), {"out": (np.float32, (64,))}
        )
        k2 = compile_kernel(self.SRC, optimize=False)
        loop_invariant_code_motion(k2)
        _, out2 = execute_kernel(
            k2, {"in": data, "n": n}, (64,), (16,), {"out": (np.float32, (64,))}
        )
        np.testing.assert_allclose(out1["out"], out2["out"])

    def test_loop_varying_load_not_hoisted(self):
        kernel = compile_kernel(self.SRC, optimize=False)
        from repro.ir.cfg import natural_loops

        loop_invariant_code_motion(kernel)
        loops = natural_loops(kernel)
        body_insts = [i for bb in loops[0].body for i in bb.instructions]
        # the i-slot load must stay inside the loop
        slot_loads = [
            i
            for i in body_insts
            if isinstance(i, Load) and isinstance(i.ptr, Alloca) and i.ptr.name == "i"
        ]
        assert slot_loads


class TestFullPipelineEquivalence:
    """Optimised and unoptimised compiles must agree on every app."""

    @pytest.mark.parametrize("app_id", ["NVD-MT", "NVD-MM-AB", "PAB-ST"])
    def test_optimize_preserves_semantics(self, app_id):
        from repro.apps.registry import get_app
        from repro.apps.harness import run_app

        app = get_app(app_id)
        out_opt = run_app(app, "with", "test").outputs
        # recompile unoptimised by bypassing the vendor pipeline
        import repro.apps.harness as harness
        from repro.frontend import compile_kernel as ck

        kernel = ck(app.source, app.kernel_name, defines=app.defines, optimize=False)
        problem = app.make_problem("test")
        _, outs = execute_kernel(
            kernel,
            problem.inputs,
            problem.global_size,
            problem.local_size,
            {k: (v.dtype, v.shape) for k, v in problem.expected.items()},
        )
        for name in out_opt:
            np.testing.assert_allclose(
                outs[name], out_opt[name], rtol=1e-5, atol=1e-5
            )
