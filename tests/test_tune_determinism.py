"""Determinism of the autotuner: feature vectors, ground-truth labels
and the serialized model must be byte-identical across worker counts
and across python processes.

This is what makes the committed ``tests/golden/tune_model.json``
artifact *shippable*: anyone retraining on the same corpus slice must
land on the same bytes (mirrors ``test_search_determinism.py``).
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys

import pytest

from repro.tune import label_corpus, train_model
from repro.tune.features import app_candidate_features, app_kernel_context
from repro.tune.model import save_model

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: a small, fast labeling slice — the promoted corpus at depth 1 on one
#: device (~170 examples in about a second)
LABEL_KW = dict(sources=("corpus",), depth=1, devices=("Fermi",))


def _subprocess_env() -> dict:
    env = dict(os.environ)
    src = os.path.join(_ROOT, "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, _ROOT, env.get("PYTHONPATH", "")) if p
    )
    return env


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _label_fingerprint(examples) -> str:
    """A digest of everything labeling decided, features included."""
    blob = json.dumps(
        [
            {
                "kernel": e.kernel_id,
                "source": e.source,
                "pipeline": list(e.pipeline),
                "device": e.device,
                "features": e.features,
                "win": e.win,
                "cycles": e.cycles,
                "baseline_cycles": e.baseline_cycles,
            }
            for e in examples
        ],
        sort_keys=True,
    )
    return _sha(blob)


def _feature_fingerprint() -> str:
    ctx = app_kernel_context("NVD-MT")
    feats, rewrites = app_candidate_features(
        ctx, "NVD-MT", ("pad-local-arrays", "grover"), "test", "Fermi"
    )
    return _sha(json.dumps(
        {"static": ctx.static, "trace": ctx.trace, "feats": feats,
         "rewrites": list(rewrites)},
        sort_keys=True,
    ))


def _model_file_sha(examples, path: str) -> str:
    tree, meta = train_model(examples, train_sources=("corpus",))
    save_model(tree, path, meta)
    with open(path, "rb") as fh:
        return hashlib.sha256(fh.read()).hexdigest()


def test_feature_vectors_identical_across_processes():
    prog = (
        "from tests.test_tune_determinism import _feature_fingerprint\n"
        "print(_feature_fingerprint())\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", prog], capture_output=True, text=True,
        check=True, env=_subprocess_env(), cwd=_ROOT,
    )
    assert proc.stdout.strip() == _feature_fingerprint()


@pytest.mark.parametrize("workers", [1, 4])
def test_labels_independent_of_worker_count(workers):
    examples = label_corpus(workers=workers, **LABEL_KW)
    assert len(examples) > 50
    assert _label_fingerprint(examples) == _EXPECTED_LABEL_FP


#: computed once at import by the serial path; both parametrizations
#: (and the cross-process test below) must land on the same digest
_EXAMPLES = label_corpus(workers=1, **LABEL_KW)
_EXPECTED_LABEL_FP = _label_fingerprint(_EXAMPLES)


def test_labels_and_model_identical_across_processes(tmp_path):
    here = _model_file_sha(_EXAMPLES, str(tmp_path / "model.json"))
    prog = (
        "import sys, tempfile, os\n"
        "from tests.test_tune_determinism import (\n"
        "    LABEL_KW, _label_fingerprint, _model_file_sha)\n"
        "from repro.tune import label_corpus\n"
        "ex = label_corpus(workers=1, **LABEL_KW)\n"
        "print(_label_fingerprint(ex))\n"
        "with tempfile.TemporaryDirectory() as d:\n"
        "    print(_model_file_sha(ex, os.path.join(d, 'model.json')))\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", prog], capture_output=True, text=True,
        check=True, env=_subprocess_env(), cwd=_ROOT,
    )
    label_fp, model_sha = proc.stdout.split()
    assert label_fp == _EXPECTED_LABEL_FP
    assert model_sha == here


def test_refit_on_identical_labels_is_byte_identical(tmp_path):
    a = _model_file_sha(_EXAMPLES, str(tmp_path / "a.json"))
    b = _model_file_sha(list(_EXAMPLES), str(tmp_path / "b.json"))
    assert a == b
