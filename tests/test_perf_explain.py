"""Tests for the cost-breakdown explainer."""

import numpy as np
import pytest

from repro.frontend import compile_kernel
from repro.perf.devices import SNB
from repro.perf.explain import CostBreakdown, compare, explain_kernel
from repro.perf.timing import estimate_cost
from repro.runtime import Memory, launch

from tests.conftest import MT_SOURCE


def mt_trace(src=MT_SOURCE, n=32, transform=False):
    kernel = compile_kernel(src)
    if transform:
        from repro.core import disable_local_memory

        disable_local_memory(kernel)
    mem = Memory()
    a = np.zeros((n, n), np.float32)
    inb, outb = mem.from_array(a), mem.alloc(a.nbytes)
    return launch(
        kernel,
        (n, n),
        (16, 16),
        {"in": inb, "out": outb, "W": n, "H": n},
        collect_trace=True,
    ).trace


class TestExplain:
    def test_components_sum_to_total(self):
        trace = mt_trace()
        bd = explain_kernel(trace, SNB)
        assert bd.cycles == pytest.approx(
            bd.inst_cycles + bd.mem_cycles + bd.barrier_cycles
        )

    def test_matches_estimate_cost(self):
        trace = mt_trace()
        bd = explain_kernel(trace, SNB)
        assert bd.cycles == pytest.approx(estimate_cost(trace, SNB).cycles)

    def test_hit_rates(self):
        bd = explain_kernel(mt_trace(), SNB)
        rates = bd.hit_rates
        assert len(rates) == 3  # L1, L2, LLC on SNB
        assert all(0.0 <= r <= 1.0 for r in rates)
        assert rates[0] > 0.5  # MT is L1-friendly

    def test_render_contains_components(self):
        text = explain_kernel(mt_trace(), SNB).render()
        assert "instructions" in text
        assert "memory" in text
        assert "barriers" in text
        assert "SNB" in text


class TestCompare:
    def test_mt_comparison_names_winner(self):
        t_with = mt_trace()
        t_without = mt_trace(transform=True)
        text = compare(t_with, t_without, SNB)
        assert "removal wins" in text
        assert "dominant component" in text
        assert "normalised performance" in text

    def test_barrier_delta_visible(self):
        t_with = mt_trace()
        t_without = mt_trace(transform=True)
        a = explain_kernel(t_with, SNB)
        b = explain_kernel(t_without, SNB)
        assert a.barrier_cycles > 0
        assert b.barrier_cycles == 0
