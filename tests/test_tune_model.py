"""The dependency-free CART predictor: fitting, serialization, the
sha256 integrity gate, and the committed artifact's pinned quality."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.tune.model import (
    default_model_path,
    load_model,
    model_sha256,
    save_model,
    train_tree,
)


def _separable(n=200, seed=3):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.0, 1.0, size=(n, 3))
    y = (X[:, 1] > 0.5).astype(np.float64)
    return X, y


# ---------------------------------------------------------------------------
# fitting
# ---------------------------------------------------------------------------


def test_tree_learns_a_separable_rule():
    X, y = _separable()
    tree = train_tree(X, y, ["a", "b", "c"], max_depth=3, min_leaf=5)
    preds = [tree.predict_proba(x) >= 0.5 for x in X]
    assert np.mean(np.array(preds) == (y == 1.0)) >= 0.95
    # the split it found is on the informative feature
    assert tree.root["split"]["feature"] == 1
    assert tree.depth <= 3
    for x in X:
        assert 0.0 <= tree.predict_proba(x) <= 1.0


def test_tree_handles_degenerate_inputs():
    # pure labels: a single leaf, probability pinned
    X = np.zeros((10, 2))
    tree = train_tree(X, np.ones(10), ["a", "b"], max_depth=3)
    assert tree.predict_proba(np.zeros(2)) == 1.0
    assert "leaf" in tree.root
    with pytest.raises(ValueError, match="zero examples"):
        train_tree(np.zeros((0, 2)), np.zeros(0), ["a", "b"])
    with pytest.raises(ValueError, match="does not match"):
        train_tree(np.zeros((5, 2)), np.zeros(5), ["a"])


def test_refit_is_byte_identical(tmp_path):
    X, y = _separable()
    p1, p2 = str(tmp_path / "m1.json"), str(tmp_path / "m2.json")
    save_model(train_tree(X, y, ["a", "b", "c"]), p1, {"run": 1})
    save_model(train_tree(X.copy(), y.copy(), ["a", "b", "c"]), p2, {"run": 1})
    with open(p1, "rb") as f1, open(p2, "rb") as f2:
        assert f1.read() == f2.read()


# ---------------------------------------------------------------------------
# serialization + integrity
# ---------------------------------------------------------------------------


def test_save_load_roundtrip(tmp_path):
    X, y = _separable()
    tree = train_tree(X, y, ["a", "b", "c"], max_depth=3)
    path = str(tmp_path / "model.json")
    payload = save_model(tree, path, {"examples": len(X)})
    pred = load_model(path)
    assert pred.sha256 == payload["sha256"] == model_sha256(payload)
    assert pred.tree.feature_names == ("a", "b", "c")
    for x in X[:20]:
        assert pred.tree.predict_proba(x) == tree.predict_proba(x)
    # dict-based prediction projects through vectorize
    assert 0.0 <= pred.predict({"b": 0.9}) <= 1.0


def test_load_rejects_tampering_and_bad_artifacts(tmp_path):
    X, y = _separable()
    path = str(tmp_path / "model.json")
    save_model(train_tree(X, y, ["a", "b", "c"]), path)

    blob = json.load(open(path))
    blob["training"] = {"examples": 999999}  # tamper without re-hashing
    json.dump(blob, open(path, "w"))
    with pytest.raises(ValueError, match="integrity"):
        load_model(path)

    json.dump({"format": "something-else"}, open(path, "w"))
    with pytest.raises(ValueError, match="artifact"):
        load_model(path)

    blob = {"format": "repro-tune-model", "version": 999}
    json.dump(blob, open(path, "w"))
    with pytest.raises(ValueError, match="version"):
        load_model(path)

    open(path, "w").write("not json")
    with pytest.raises(ValueError, match="cannot read"):
        load_model(path)

    with pytest.raises(ValueError, match="cannot read"):
        load_model(str(tmp_path / "missing.json"))


# ---------------------------------------------------------------------------
# the committed artifact
# ---------------------------------------------------------------------------


def test_committed_model_loads_and_pins_its_quality():
    """The artifact the search prunes with: integrity-checked on load,
    trained on corpus+fuzz only (the 11 apps are honest holdout), and
    its recorded holdout quality stays above the floor — in particular
    no true winner is pruned at the default 0.25 threshold."""
    path = default_model_path()
    assert os.path.exists(path), "tests/golden/tune_model.json missing"
    pred = load_model(path)
    training = pred.payload["training"]
    assert set(training["sources"]) == {"corpus", "fuzz"}
    holdout = training["holdout"]
    assert holdout["examples"] > 0
    assert holdout["accuracy"] >= 0.75
    assert holdout["winner_recall_at_0.25"] == 1.0
    assert len(holdout["kernels"]) == 11  # every Table III app held out
    assert len(pred.tree.feature_names) == len(set(pred.tree.feature_names))
    # a prediction is a probability
    assert 0.0 <= pred.predict({}) <= 1.0
