"""The four-way differential oracle and the campaign runner.

Hand-written kernels with known verdicts check each cross-validation
rule individually (veto on decided races, divergence cross-check,
rejected-candidate explanations, transform semantics), fault injection
proves a real disagreement is detected/minimized/filed, and the
Grover-dominance regression the fuzzer itself found stays pinned.
"""

from __future__ import annotations

import os

import pytest

from repro.core.grover import GroverPass
from repro.frontend import compile_kernel
from repro.fuzz import (
    FuzzOptions,
    generate_case,
    run_case,
    run_fuzz,
    run_source,
)
from repro.session import events

# ---------------------------------------------------------------------------
# per-rule checks on hand-written kernels
# ---------------------------------------------------------------------------

CLEAN_CACHE = r"""
__kernel void fz(__global float* out, __global const float* in, int P)
{
    __local float lm0[64];
    int li = get_local_id(0);
    int gi = get_global_id(0);
    int wi = get_group_id(0);
    float acc = 0.0f;
    lm0[li] = in[(wi * 16 + li)];
    barrier(CLK_LOCAL_MEM_FENCE);
    acc = (acc + lm0[(15 - li)]);
    out[gi] = acc;
}
"""

STATIC_RACE = r"""
__kernel void fz(__global float* out, __global const float* in, int P)
{
    __local float lm0[64];
    int li = get_local_id(0);
    int gi = get_global_id(0);
    float acc = 0.0f;
    lm0[0] = in[gi];
    barrier(CLK_LOCAL_MEM_FENCE);
    acc = (acc + lm0[0]);
    out[gi] = acc;
}
"""

DIVERGENT = r"""
__kernel void fz(__global float* out, __global const float* in, int P)
{
    __local float lm0[64];
    int li = get_local_id(0);
    int gi = get_global_id(0);
    float acc = 0.0f;
    lm0[li] = in[gi];
    if (li < 8) {
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    acc = (acc + lm0[li]);
    out[gi] = acc;
}
"""

NO_LOCAL = r"""
__kernel void fz(__global float* out, __global const float* in, int P)
{
    int gi = get_global_id(0);
    out[gi] = in[gi] + (float)P;
}
"""

# the minimized kernel the fuzzer found (seed 3, case 7): the staging
# store's GL index uses the loop counter k1, which is not available at
# the (earlier) local load — the pass used to emit invalid IR for it
GL_NOT_AVAILABLE = r"""
__kernel void fz(__global float* out, __global const float* in, int P)
{
    __local float lm0[64];
    int li = get_local_id(0);
    int gi = get_global_id(0);
    float acc = 0.0f;
    acc = (acc + lm0[(2 * li + 22)]);
    for (int k1 = 0; k1 < 2; ++k1) {
        lm0[(22 - li)] = in[(gi + k1 * 32)];
    }
    out[gi] = acc;
}
"""


def _judge(source, global_size=(32,), local_size=(16,)):
    return run_source(source, "fz", global_size, local_size, 256, 2)


def test_clean_cache_transforms_and_output_checked():
    out = _judge(CLEAN_CACHE)
    assert out.agreed, [m.render() for m in out.mismatches]
    assert out.exec_outcome == "ok"
    assert out.analyzer == "clean"
    assert out.grover == "t1r0"
    assert out.cycles > 0


def test_decided_race_is_vetoed():
    out = _judge(STATIC_RACE)
    assert out.agreed, [m.render() for m in out.mismatches]
    assert out.analyzer.startswith("race")
    assert out.grover == "veto"
    assert any("veto-confirmed" in e for e in out.explanations)


def test_divergent_barrier_consistent_across_arbiters():
    out = _judge(DIVERGENT)
    assert out.agreed, [m.render() for m in out.mismatches]
    assert out.exec_outcome == "error:BarrierDivergenceError"
    assert out.grover == "veto"


def test_no_local_kernel_is_named_not_mismatched():
    out = _judge(NO_LOCAL)
    assert out.agreed
    assert out.grover == "no-local"


def test_grover_rejects_unavailable_gl_index_instead_of_invalid_ir():
    kernel = compile_kernel(GL_NOT_AVAILABLE)
    report = GroverPass(allow_partial=True).run(kernel)
    assert len(report.transformed) == 0
    assert len(report.rejected) == 1
    assert "not available" in report.rejected[0].reason
    # and the full oracle agrees end to end (rejected-deferred/structural
    # explanation, no verifier crash)
    out = _judge(GL_NOT_AVAILABLE)
    assert out.agreed, [m.render() for m in out.mismatches]
    assert out.grover.startswith("t0r")
    assert any("rejected-" in e for e in out.explanations)


def test_rejections_always_carry_an_explanation():
    for index in range(30):
        case = generate_case(5, index)
        out = run_case(case)
        assert out.agreed
        n_rejected = (
            int(out.grover.partition("r")[2]) if out.grover.startswith("t") else 0
        )
        explained = [e for e in out.explanations if e.startswith("rejected-")]
        assert len(explained) == n_rejected


# ---------------------------------------------------------------------------
# fault injection: the mismatch path end to end
# ---------------------------------------------------------------------------


def test_injected_fault_is_detected_minimized_and_filed(tmp_path):
    out_dir = str(tmp_path / "repros")
    with events.collect() as sink:
        run = run_fuzz(
            FuzzOptions(
                seed=7, count=3, minimize=True, corrupt="tape",
                out_dir=out_dir,
            )
        )
    # the corruption hits output buffers, so exactly the cases that
    # execute (a BarrierDivergenceError case has no outputs to corrupt)
    ok_cases = [r for r in run.results if r.outcome.exec_outcome == "ok"]
    assert ok_cases
    assert run.mismatching == ok_cases
    assert all(
        m.check == "exec-diff"
        for r in run.mismatching
        for m in r.outcome.mismatches
    )
    # one reproducer file per mismatch, containing the minimized kernel
    assert len(run.reproducers) == len(ok_cases)
    for path in run.reproducers:
        assert os.path.exists(path)
        text = open(path).read()
        assert "fuzz reproducer" in text and "exec-diff" in text
        assert "(minimized)" in text
    # the event stream names every case and every mismatch
    kinds = sink.kinds()
    assert kinds.count("fuzz_case") == 3
    assert kinds.count("fuzz_mismatch") >= len(ok_cases)
    assert kinds[-1] == "fuzz_end"
    end = sink.of_kind("fuzz_end")[0].payload
    assert end["cases"] == 3 and end["mismatches"] == len(ok_cases)
    for e in sink.of_kind("fuzz_case"):
        events.validate_event(e.kind, e.payload)


def test_clean_campaign_emits_agreeing_events(tmp_path):
    with events.collect() as sink:
        run = run_fuzz(
            FuzzOptions(seed=7, count=4, out_dir=str(tmp_path / "r"))
        )
    assert not run.mismatching
    assert run.reproducers == []
    cases = sink.of_kind("fuzz_case")
    assert [e.payload["index"] for e in cases] == [0, 1, 2, 3]
    assert all(e.payload["outcome"] == "agree" for e in cases)
    assert sink.of_kind("fuzz_mismatch") == []


def test_promotion_dedupes_by_shape(tmp_path):
    corpus = str(tmp_path / "corpus")
    opts = FuzzOptions(
        seed=7, count=10, promote=True, corpus_dir=corpus,
        out_dir=str(tmp_path / "r"),
    )
    first = run_fuzz(opts)
    assert first.promoted
    # a second identical campaign finds no new shapes
    second = run_fuzz(opts)
    assert second.promoted == []


def test_cli_exit_codes(tmp_path):
    from repro.fuzz.runner import main

    assert (
        main(["--seed", "7", "--count", "2", "--out", str(tmp_path / "a")])
        == 0
    )
    assert (
        main(
            ["--seed", "7", "--count", "2", "--inject-fault", "codegen",
             "--out", str(tmp_path / "b")]
        )
        == 1
    )


def test_campaign_under_sharded_workers(tmp_path):
    """The pool fan-out path: results arrive complete and in order."""
    run = run_fuzz(
        FuzzOptions(seed=11, count=6, workers=2, out_dir=str(tmp_path / "r"))
    )
    assert [r.index for r in run.results] == list(range(6))
    assert not run.mismatching
