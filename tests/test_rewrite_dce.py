"""Tests for the rewrite machinery (Algorithm 1) and the DCE cleanup."""

import pytest

from repro.core.candidates import find_candidates
from repro.core.dce import (
    eliminate_dead_code,
    has_local_accesses,
    remove_dead_slots,
    remove_stores_to,
    strip_local_barriers,
)
from repro.core.duplicate import duplicate_instructions, mark_tree
from repro.core.exprtree import build_tree
from repro.core.linexpr import LinExpr, lid
from repro.core.rewrite import Materializer, RewriteError
from repro.frontend import compile_kernel
from repro.ir.builder import IRBuilder
from repro.ir.cfg import dominators
from repro.ir.instructions import BinOp, Call, Instruction, Load, Store, is_barrier
from repro.ir.types import AddressSpace, I64
from repro.ir.values import Constant

from tests.conftest import MT_SOURCE


def mt_with_candidate():
    fn = compile_kernel(MT_SOURCE)
    (cand,), _ = find_candidates(fn)
    return fn, cand


class TestMaterializer:
    def _mat(self, fn, anchor):
        b = IRBuilder()
        b.position_before(anchor)
        return Materializer(b, fn, dominators(fn), anchor)

    def test_constant(self):
        fn, cand = mt_with_candidate()
        mat = self._mat(fn, cand.lls[0])
        v = mat.materialize(LinExpr.constant(7))
        assert isinstance(v, Constant) and v.value == 7

    def test_zero(self):
        fn, cand = mt_with_candidate()
        mat = self._mat(fn, cand.lls[0])
        v = mat.materialize(LinExpr.zero())
        assert isinstance(v, Constant) and v.value == 0

    def test_thread_index_symbol_emits_call(self):
        fn, cand = mt_with_candidate()
        ll = cand.lls[0]
        mat = self._mat(fn, ll)
        v = mat.materialize(LinExpr.symbol(lid(1)))
        assert isinstance(v, Call) and v.callee == "get_local_id"
        assert v.type == I64
        # emitted right before the LL
        idx = ll.parent.instructions.index(ll)
        assert ll.parent.instructions.index(v) < idx

    def test_symbol_caching(self):
        fn, cand = mt_with_candidate()
        mat = self._mat(fn, cand.lls[0])
        v1 = mat.symbol_value(lid(0))
        v2 = mat.symbol_value(lid(0))
        assert v1 is v2

    def test_linear_combination(self):
        fn, cand = mt_with_candidate()
        mat = self._mat(fn, cand.lls[0])
        expr = LinExpr.symbol(lid(0), 3) + LinExpr.constant(5)
        v = mat.materialize(expr)
        assert isinstance(v, BinOp)  # an add at the top

    def test_fractional_coefficient_rejected(self):
        from fractions import Fraction

        fn, cand = mt_with_candidate()
        mat = self._mat(fn, cand.lls[0])
        with pytest.raises(RewriteError, match="non-integral"):
            mat.materialize(LinExpr.symbol(lid(0), Fraction(1, 2)))


class TestAlgorithm1:
    def test_unmarked_tree_fully_reused(self):
        fn, cand = mt_with_candidate()
        ll = cand.lls[0]
        tree = build_tree(cand.gl.ptr)
        mark_tree(tree, {}, anchor=ll, doms=dominators(fn))
        b = IRBuilder()
        b.position_before(ll)
        before = sum(len(bb.instructions) for bb in fn.blocks)
        v = duplicate_instructions(tree, b, {})
        after = sum(len(bb.instructions) for bb in fn.blocks)
        assert v is cand.gl.ptr  # nothing cloned: original value reused
        assert after == before

    def test_substituted_leaf_forces_clone_path(self):
        fn, cand = mt_with_candidate()
        ll = cand.lls[0]
        tree = build_tree(cand.gl.ptr)
        # substitute one get_local_id leaf with a constant
        from repro.core.exprtree import local_id_dim

        leaf = next(n for n in tree.walk() if local_id_dim(n.value) == 0)
        subst = {leaf: Constant(I64, 0)}
        mark_tree(tree, subst, anchor=ll, doms=dominators(fn))
        assert tree.state  # root marked through the leaf's ancestors
        b = IRBuilder()
        b.position_before(ll)
        v = duplicate_instructions(tree, b, subst)
        assert v is not cand.gl.ptr
        assert isinstance(v, Instruction)

    def test_force_all_clones_everything(self):
        fn, cand = mt_with_candidate()
        ll = cand.lls[0]
        tree = build_tree(cand.gl.ptr)
        mark_tree(tree, {}, anchor=ll, doms=dominators(fn), force_all=True)
        b = IRBuilder()
        b.position_before(ll)
        before = sum(len(bb.instructions) for bb in fn.blocks)
        duplicate_instructions(tree, b, {})
        after = sum(len(bb.instructions) for bb in fn.blocks)
        internal_nodes = sum(
            1 for n in tree.walk() if isinstance(n.value, Instruction)
        )
        assert after - before == internal_nodes


class TestDCE:
    def test_remove_stores_to(self):
        fn, cand = mt_with_candidate()
        n = remove_stores_to(fn, cand.array)
        assert n == 1
        stores = [
            i
            for i in fn.instructions()
            if isinstance(i, Store) and i.addrspace == AddressSpace.LOCAL
        ]
        assert not stores

    def test_dead_chain_collapses(self):
        fn, cand = mt_with_candidate()
        remove_stores_to(fn, cand.array)
        # LL still reads the array, so local accesses remain
        assert has_local_accesses(fn)
        removed = eliminate_dead_code(fn)
        assert removed > 0  # the GL and its index chain died

    def test_barriers_stripped_only_when_no_local_left(self):
        fn, cand = mt_with_candidate()
        assert strip_local_barriers(fn) == 0  # local accesses still present
        # erase the load too (simulating the rewrite)
        for ll in cand.lls:
            ll.replace_all_uses_with(Constant(ll.type, 0))
            ll.erase_from_parent()
        remove_stores_to(fn, cand.array)
        assert strip_local_barriers(fn) == 1
        assert not any(is_barrier(i) for i in fn.instructions())

    def test_remove_dead_slots(self):
        """A slot whose only remaining uses are stores disappears (the
        shape left behind after the Grover rewrite kills a variable's
        readers, e.g. the `val` temp of Fig. 1)."""
        from repro.ir.function import Function
        from repro.ir.instructions import Alloca
        from repro.ir.types import I32 as I32t

        fn = Function("f", [I32t], ["n"])
        b = IRBuilder(fn.add_block("entry"))
        slot = b.alloca(I32t, "dead")
        b.store(fn.arg("n"), slot)
        b.store(Constant(I32t, 2), slot)  # two stores: mem2reg won't touch it
        b.ret()
        removed = remove_dead_slots(fn)
        assert removed == 3  # two stores + the alloca
        assert not any(isinstance(i, Alloca) for i in fn.instructions())
