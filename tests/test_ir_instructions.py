"""Unit tests for instruction construction, typing rules and cloning."""

import pytest

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CastKind,
    CmpPred,
    CondBr,
    ExtractElement,
    FCmp,
    GEP,
    ICmp,
    InsertElement,
    Load,
    Opcode,
    Ret,
    Select,
    Store,
    is_barrier,
    is_side_effecting,
)
from repro.ir.types import (
    AddressSpace,
    ArrayType,
    BOOL,
    FLOAT,
    I32,
    I64,
    PointerType,
    VectorType,
    VOID,
)
from repro.ir.values import Argument, Constant


def gptr(ty=FLOAT, space=AddressSpace.GLOBAL, name="p"):
    return Argument(PointerType(ty, space), name, 0)


class TestBinOpAndCmp:
    def test_type_mismatch_rejected(self):
        with pytest.raises(TypeError):
            BinOp(Opcode.ADD, Constant(I32, 1), Constant(I64, 2))
        with pytest.raises(TypeError):
            ICmp(CmpPred.EQ, Constant(I32, 1), Constant(FLOAT, 1.0))
        with pytest.raises(TypeError):
            FCmp(CmpPred.OLT, Constant(FLOAT, 1.0), Constant(I32, 1))

    def test_result_types(self):
        add = BinOp(Opcode.ADD, Constant(I32, 1), Constant(I32, 2))
        assert add.type == I32
        cmp = ICmp(CmpPred.SLT, Constant(I32, 1), Constant(I32, 2))
        assert cmp.type == BOOL

    def test_opcode_is_float_flag(self):
        assert Opcode.FADD.is_float and not Opcode.ADD.is_float


class TestSelectAndCast:
    def test_select_arm_mismatch(self):
        c = ICmp(CmpPred.EQ, Constant(I32, 0), Constant(I32, 0))
        with pytest.raises(TypeError):
            Select(c, Constant(I32, 1), Constant(FLOAT, 1.0))

    def test_cast_result_type(self):
        c = Cast(CastKind.SITOFP, Constant(I32, 3), FLOAT)
        assert c.type == FLOAT


class TestMemoryInstructions:
    def test_load_needs_pointer(self):
        with pytest.raises(TypeError):
            Load(Constant(I32, 0))

    def test_load_type_and_space(self):
        ld = Load(gptr(FLOAT, AddressSpace.LOCAL))
        assert ld.type == FLOAT
        assert ld.addrspace == AddressSpace.LOCAL

    def test_store_type_check(self):
        with pytest.raises(TypeError):
            Store(Constant(I32, 1), gptr(FLOAT))
        st = Store(Constant(FLOAT, 1.0), gptr(FLOAT))
        assert st.type == VOID

    def test_alloca_result_is_private_pointer(self):
        a = Alloca(I32, "x")
        assert a.type == PointerType(I32, AddressSpace.PRIVATE)
        assert a.allocated_type == I32


class TestGEP:
    def test_scalar_pointer_single_index(self):
        g = GEP(gptr(FLOAT), [Constant(I32, 3)])
        assert g.type.pointee == FLOAT
        assert g.strides() == [4]

    def test_scalar_pointer_rejects_multi_index(self):
        with pytest.raises(TypeError):
            GEP(gptr(FLOAT), [Constant(I32, 0), Constant(I32, 1)])

    def test_array_pointer_peels_levels(self):
        arr = ArrayType(ArrayType(FLOAT, 8), 4)
        base = gptr(arr, AddressSpace.LOCAL)
        g = GEP(base, [Constant(I32, 1), Constant(I32, 2)])
        assert g.type.pointee == FLOAT
        assert g.strides() == [32, 4]  # row stride then element stride

    def test_partial_indexing(self):
        arr = ArrayType(ArrayType(FLOAT, 8), 4)
        g = GEP(gptr(arr), [Constant(I32, 1)])
        assert g.type.pointee == ArrayType(FLOAT, 8)

    def test_too_many_indices(self):
        arr = ArrayType(FLOAT, 8)
        with pytest.raises(TypeError):
            GEP(gptr(arr), [Constant(I32, 0), Constant(I32, 1)])

    def test_addrspace_propagates(self):
        g = GEP(gptr(FLOAT, AddressSpace.LOCAL), [Constant(I32, 0)])
        assert g.addrspace == AddressSpace.LOCAL

    def test_vector_element_stride(self):
        g = GEP(gptr(VectorType(FLOAT, 4)), [Constant(I32, 2)])
        assert g.strides() == [16]


class TestVectorInstructions:
    def test_extract(self):
        vec = Argument(VectorType(FLOAT, 4), "v", 0)
        e = ExtractElement(vec, Constant(I32, 1))
        assert e.type == FLOAT

    def test_extract_needs_vector(self):
        with pytest.raises(TypeError):
            ExtractElement(Constant(FLOAT, 1.0), Constant(I32, 0))

    def test_insert_type_check(self):
        vec = Argument(VectorType(FLOAT, 4), "v", 0)
        with pytest.raises(TypeError):
            InsertElement(vec, Constant(I32, 1), Constant(I32, 0))
        ins = InsertElement(vec, Constant(FLOAT, 1.0), Constant(I32, 0))
        assert ins.type == VectorType(FLOAT, 4)


class TestTerminators:
    def test_successors(self):
        bb1, bb2 = BasicBlock("a"), BasicBlock("b")
        assert Br(bb1).successors() == [bb1]
        cond = ICmp(CmpPred.EQ, Constant(I32, 0), Constant(I32, 0))
        cb = CondBr(cond, bb1, bb2)
        assert cb.successors() == [bb1, bb2]
        assert Ret().successors() == []

    def test_condbr_needs_bool(self):
        with pytest.raises(TypeError):
            CondBr(Constant(I32, 1), BasicBlock(), BasicBlock())

    def test_terminator_flags(self):
        assert Br(BasicBlock()).is_terminator
        assert Ret().is_terminator
        assert not Alloca(I32).is_terminator


class TestCloneAndErase:
    def test_clone_shares_operands(self):
        a, b = Constant(I32, 1), Constant(I32, 2)
        inst = BinOp(Opcode.ADD, a, b, "sum")
        c = inst.clone()
        assert c is not inst
        assert c.operands == [a, b]
        assert c.opcode == Opcode.ADD
        assert (c, 0) in a.uses  # the clone registers its own uses

    def test_clone_preserves_extra_slots(self):
        g = GEP(gptr(FLOAT), [Constant(I32, 1)])
        c = g.clone()
        assert isinstance(c, GEP) and c.strides() == [4]
        call = Call("get_local_id", [Constant(I32, 0)], I64)
        cc = call.clone()
        assert cc.callee == "get_local_id"

    def test_erase_from_parent(self):
        fn = Function("f", [], [], VOID)
        bb = fn.add_block("entry")
        inst = BinOp(Opcode.ADD, Constant(I32, 1), Constant(I32, 2))
        bb.append(inst)
        inst.erase_from_parent()
        assert inst not in bb.instructions
        assert inst.parent is None


class TestSideEffects:
    def test_barrier_detection(self):
        assert is_barrier(Call("barrier", [Constant(I32, 1)], VOID))
        assert not is_barrier(Call("sqrt", [Constant(FLOAT, 1.0)], FLOAT))

    def test_side_effecting(self):
        assert is_side_effecting(Store(Constant(FLOAT, 0.0), gptr(FLOAT)))
        assert is_side_effecting(Call("barrier", [Constant(I32, 1)], VOID))
        assert not is_side_effecting(Call("sqrt", [Constant(FLOAT, 1.0)], FLOAT))
        assert is_side_effecting(Ret())
