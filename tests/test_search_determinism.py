"""Determinism of the pipeline search: the winning pipeline (and every
number in the report) must be byte-identical across worker counts and
across python processes.

This is what makes a searched pipeline *shippable*: the CI golden file
pins one exact report, and ``repro search --workers 4`` on any machine
must reproduce it bit-for-bit (mirrors ``test_fuzz_determinism.py``).
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys

import pytest

from repro.search import SearchOptions, run_search

APPS = ("NVD-MT", "PAB-ST")
DEPTH, BEAM = 2, 2

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _subprocess_env() -> dict:
    env = dict(os.environ)
    src = os.path.join(_ROOT, "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, _ROOT, env.get("PYTHONPATH", "")) if p
    )
    return env


def _options(workers: int) -> SearchOptions:
    return SearchOptions(apps=APPS, beam=BEAM, depth=DEPTH, workers=workers)


def _fingerprint(results) -> str:
    """A digest of everything the search decided (wall times excluded)."""
    blob = json.dumps(
        [
            {
                "app": r.app_id,
                "device": r.device,
                "pipeline": list(r.winner.pipeline),
                "rewrites": list(r.winner.rewrites),
                "cycles": r.winner.cycles,
                "baseline_cycles": r.baseline.cycles,
                "evaluated": r.evaluated,
                "verified": r.verified,
                "rejected": list(r.rejected),
            }
            for r in results
        ],
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def test_winners_identical_across_processes():
    fp_here = _fingerprint(run_search(_options(workers=1)).results)
    prog = (
        "from tests.test_search_determinism import _fingerprint, _options\n"
        "from repro.search import run_search\n"
        "print(_fingerprint(run_search(_options(workers=1)).results))\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", prog], capture_output=True, text=True,
        check=True, env=_subprocess_env(), cwd=_ROOT,
    )
    assert proc.stdout.strip() == fp_here


@pytest.mark.parametrize("workers", [1, 4])
def test_winners_independent_of_worker_count(workers):
    run = run_search(_options(workers=workers))
    assert run.workers >= 1
    assert _fingerprint(run.results) == _EXPECTED_FP


#: computed once at import by the serial path; both parametrizations
#: (and the cross-process test) must land on the same digest
_EXPECTED_FP = _fingerprint(run_search(_options(workers=1)).results)


def test_report_text_identical_across_worker_counts():
    """The golden file pins the rendered report, so the text itself —
    not just the structured fields — must be worker-independent."""
    from repro.search import render_search

    serial = run_search(_options(workers=1))
    fanned = run_search(_options(workers=4))
    assert render_search(serial) == render_search(fanned)
