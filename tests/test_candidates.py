"""Tests for GL/LS/LL candidate detection (Section IV-A)."""

import pytest

from repro.core.candidates import base_object, find_candidates, strip_casts
from repro.frontend import compile_kernel
from repro.ir.instructions import GEP, Load, Store
from repro.ir.types import AddressSpace

from tests.conftest import MM_SOURCE, MT_SOURCE, REDUCTION_SOURCE


class TestBaseObject:
    def test_walks_gep_chain(self):
        fn = compile_kernel(MT_SOURCE)
        for inst in fn.instructions():
            if isinstance(inst, Store) and inst.addrspace == AddressSpace.LOCAL:
                assert base_object(inst.ptr) is fn.local_array("lm")


class TestDetection:
    def test_mt_candidate(self):
        fn = compile_kernel(MT_SOURCE)
        cands, rejs = find_candidates(fn)
        assert not rejs
        (c,) = cands
        assert c.name == "lm"
        assert isinstance(c.gl, Load) and c.gl.addrspace == AddressSpace.GLOBAL
        assert isinstance(c.ls, Store) and c.ls.addrspace == AddressSpace.LOCAL
        assert len(c.lls) == 1
        assert len(c.pairs) == 1

    def test_mm_two_candidates(self):
        fn = compile_kernel(MM_SOURCE)
        cands, rejs = find_candidates(fn)
        assert {c.name for c in cands} == {"As", "Bs"}
        assert not rejs
        for c in cands:
            assert len(c.lls) == 1

    def test_array_filter(self):
        fn = compile_kernel(MM_SOURCE)
        cands, _ = find_candidates(fn, arrays=["As"])
        assert [c.name for c in cands] == ["As"]

    def test_unknown_array_name(self):
        fn = compile_kernel(MM_SOURCE)
        with pytest.raises(KeyError, match="no such local"):
            find_candidates(fn, arrays=["Zs"])

    def test_reduction_rejected(self):
        fn = compile_kernel(REDUCTION_SOURCE)
        cands, rejs = find_candidates(fn)
        assert not cands
        (r,) = rejs
        assert r.name == "sm"
        assert "not fed by a global load" in r.reason or "read-modify-write" in r.reason

    def test_rmw_rejected(self):
        src = """
__kernel void k(__global float* out, __global const float* in)
{
    __local float lm[16];
    int li = get_local_id(0);
    lm[li] = in[li];
    barrier(CLK_LOCAL_MEM_FENCE);
    lm[li] = lm[(li + 1) % 16];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[li] = lm[li];
}
"""
        fn = compile_kernel(src)
        cands, rejs = find_candidates(fn)
        assert not cands
        assert "read-modify-write" in rejs[0].reason

    def test_never_read_rejected(self):
        src = """
__kernel void k(__global float* out, __global const float* in)
{
    __local float lm[16];
    lm[get_local_id(0)] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = 0.0f;
}
"""
        fn = compile_kernel(src)
        cands, rejs = find_candidates(fn)
        assert not cands
        assert "never read" in rejs[0].reason

    def test_never_written_rejected(self):
        src = """
__kernel void k(__global float* out)
{
    __local float lm[16];
    out[get_global_id(0)] = lm[get_local_id(0)];
}
"""
        fn = compile_kernel(src)
        cands, rejs = find_candidates(fn)
        assert "never written" in rejs[0].reason

    def test_computed_store_rejected(self):
        src = """
__kernel void k(__global float* out, __global const float* in)
{
    __local float lm[16];
    int li = get_local_id(0);
    lm[li] = in[li] * 2.0f;   /* computed, not a staged copy */
    barrier(CLK_LOCAL_MEM_FENCE);
    out[li] = lm[li];
}
"""
        fn = compile_kernel(src)
        cands, rejs = find_candidates(fn)
        assert not cands
        assert "not fed by a global load" in rejs[0].reason

    def test_store_through_cast_accepted(self):
        src = """
__kernel void k(__global float* out, __global const int* in)
{
    __local float lm[16];
    int li = get_local_id(0);
    lm[li] = (float)in[li];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[li] = lm[li];
}
"""
        fn = compile_kernel(src)
        cands, rejs = find_candidates(fn)
        assert len(cands) == 1 and not rejs


class TestMultiPassStaging:
    HALO = """
#define S 16
__kernel void k(__global float* out, __global const float* in, int Wp)
{
    __local float lm[S + 2];
    int lx = get_local_id(0);
    int base = (int)get_group_id(0) * S + lx;
    lm[lx + 1] = in[base + 1];
    if (lx == 0)     lm[0]     = in[base];
    if (lx == S - 1) lm[S + 1] = in[base + 2];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[lx] + lm[lx + 2];
}
"""

    def test_multiple_pairs_detected(self):
        fn = compile_kernel(self.HALO)
        cands, _ = find_candidates(fn)
        (c,) = cands
        assert len(c.pairs) == 3
        assert len(c.lls) == 2

    def test_dominating_pair_preferred(self):
        from repro.ir.cfg import dominators, inst_dominates

        fn = compile_kernel(self.HALO)
        (c,) = find_candidates(fn)[0]
        doms = dominators(fn)
        assert all(inst_dominates(doms, c.ls, ll) for ll in c.lls)

    def test_local_ptr_arg_is_candidate_object(self):
        src = """
__kernel void k(__global float* out, __global const float* in,
                __local float* scratch)
{
    int li = get_local_id(0);
    scratch[li] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = scratch[(li + 1) % 16];
}
"""
        fn = compile_kernel(src)
        cands, _ = find_candidates(fn)
        assert [c.name for c in cands] == ["scratch"]
