"""Unit tests for CFG analyses: orders, dominators, loops."""

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.cfg import (
    back_edges,
    dominators,
    immediate_dominators,
    inst_dominates,
    loop_headers,
    natural_loops,
    predecessors,
    reverse_postorder,
)
from repro.ir.function import Function
from repro.ir.types import BOOL, I32
from repro.ir.values import Constant


def diamond():
    """entry -> (then | else) -> merge"""
    fn = Function("d", [], [])
    entry = fn.add_block("entry")
    then = fn.add_block("then")
    other = fn.add_block("else")
    merge = fn.add_block("merge")
    b = IRBuilder(entry)
    cond = b.icmp("eq", Constant(I32, 0), Constant(I32, 0))
    b.cond_br(cond, then, other)
    IRBuilder(then).br(merge)
    IRBuilder(other).br(merge)
    IRBuilder(merge).ret()
    return fn, (entry, then, other, merge)


def loop_fn():
    """entry -> header -> (body -> header) | exit"""
    fn = Function("l", [], [])
    entry = fn.add_block("entry")
    header = fn.add_block("header")
    body = fn.add_block("body")
    exit_ = fn.add_block("exit")
    IRBuilder(entry).br(header)
    b = IRBuilder(header)
    cond = b.icmp("slt", Constant(I32, 0), Constant(I32, 1))
    b.cond_br(cond, body, exit_)
    IRBuilder(body).br(header)
    IRBuilder(exit_).ret()
    return fn, (entry, header, body, exit_)


class TestOrdersAndPreds:
    def test_rpo_starts_at_entry(self):
        fn, (entry, *_rest) = diamond()
        assert reverse_postorder(fn)[0] is entry

    def test_rpo_merge_last(self):
        fn, (entry, then, other, merge) = diamond()
        assert reverse_postorder(fn)[-1] is merge

    def test_predecessors(self):
        fn, (entry, then, other, merge) = diamond()
        preds = predecessors(fn)
        assert set(preds[merge]) == {then, other}
        assert preds[entry] == []

    def test_unreachable_blocks_excluded(self):
        fn, _ = diamond()
        dead = fn.add_block("dead")
        IRBuilder(dead).ret()
        assert dead not in reverse_postorder(fn)


class TestDominators:
    def test_diamond_idoms(self):
        fn, (entry, then, other, merge) = diamond()
        idom = immediate_dominators(fn)
        assert idom[entry] is None
        assert idom[then] is entry
        assert idom[other] is entry
        assert idom[merge] is entry  # neither branch dominates merge

    def test_dominator_sets(self):
        fn, (entry, then, other, merge) = diamond()
        doms = dominators(fn)
        assert doms[merge] == {entry, merge}
        assert doms[then] == {entry, then}

    def test_loop_idoms(self):
        fn, (entry, header, body, exit_) = loop_fn()
        idom = immediate_dominators(fn)
        assert idom[header] is entry
        assert idom[body] is header
        assert idom[exit_] is header

    def test_inst_dominates_same_block(self):
        fn, (entry, *_r) = diamond()
        doms = dominators(fn)
        first, second = entry.instructions[0], entry.instructions[1]
        assert inst_dominates(doms, first, second)
        assert not inst_dominates(doms, second, first)

    def test_inst_dominates_across_blocks(self):
        fn, (entry, then, other, merge) = diamond()
        doms = dominators(fn)
        cond = entry.instructions[0]
        ret = merge.instructions[0]
        assert inst_dominates(doms, cond, ret)
        assert not inst_dominates(doms, then.instructions[0], ret)


class TestLoops:
    def test_back_edges(self):
        fn, (entry, header, body, exit_) = loop_fn()
        assert back_edges(fn) == [(body, header)]
        assert loop_headers(fn) == {header}

    def test_diamond_has_no_loops(self):
        fn, _ = diamond()
        assert back_edges(fn) == []
        assert natural_loops(fn) == []

    def test_natural_loop_body_and_preheader(self):
        fn, (entry, header, body, exit_) = loop_fn()
        loops = natural_loops(fn)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header is header
        assert loop.body == {header, body}
        assert loop.preheader is entry
        assert loop.contains(body) and not loop.contains(exit_)

    def test_nested_loops_sorted_innermost_first(self):
        fn = Function("n", [], [])
        entry = fn.add_block("entry")
        oh = fn.add_block("outer_h")
        ih = fn.add_block("inner_h")
        ib = fn.add_block("inner_b")
        ol = fn.add_block("outer_latch")
        ex = fn.add_block("exit")
        IRBuilder(entry).br(oh)
        b = IRBuilder(oh)
        c1 = b.icmp("eq", Constant(I32, 0), Constant(I32, 0))
        b.cond_br(c1, ih, ex)
        b = IRBuilder(ih)
        c2 = b.icmp("eq", Constant(I32, 0), Constant(I32, 0))
        b.cond_br(c2, ib, ol)
        IRBuilder(ib).br(ih)
        IRBuilder(ol).br(oh)
        IRBuilder(ex).ret()
        loops = natural_loops(fn)
        assert len(loops) == 2
        assert loops[0].header is ih  # innermost first (smaller body)
        assert loops[1].header is oh
        assert loops[0].body < loops[1].body
