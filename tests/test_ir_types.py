"""Unit tests for the IR type system."""

import numpy as np
import pytest

from repro.ir.types import (
    AddressSpace,
    ArrayType,
    BOOL,
    DOUBLE,
    FLOAT,
    FloatType,
    I8,
    I16,
    I32,
    I64,
    IntType,
    PointerType,
    U8,
    U32,
    U64,
    VectorType,
    VOID,
    is_float,
    is_integer,
    is_pointer,
    is_scalar,
    is_vector,
)


class TestScalarTypes:
    def test_int_sizes(self):
        assert I8.size == 1
        assert I16.size == 2
        assert I32.size == 4
        assert I64.size == 8

    def test_float_sizes(self):
        assert FLOAT.size == 4
        assert DOUBLE.size == 8

    def test_void_and_bool(self):
        assert VOID.size == 0
        assert BOOL.size == 1

    def test_interning_by_value(self):
        assert IntType(32, True) == I32
        assert IntType(32, False) != I32
        assert FloatType(32) == FLOAT
        assert hash(IntType(32, True)) == hash(I32)

    def test_unsupported_widths_rejected(self):
        with pytest.raises(ValueError):
            IntType(12)
        with pytest.raises(ValueError):
            FloatType(8)

    def test_numpy_dtypes(self):
        assert I32.numpy_dtype == np.dtype(np.int32)
        assert U8.numpy_dtype == np.dtype(np.uint8)
        assert FLOAT.numpy_dtype == np.dtype(np.float32)

    def test_int_ranges(self):
        assert I8.min_value == -128 and I8.max_value == 127
        assert U8.min_value == 0 and U8.max_value == 255
        assert I32.max_value == 2**31 - 1
        assert U64.max_value == 2**64 - 1

    def test_str_rendering(self):
        assert str(I32) == "i32"
        assert str(U32) == "u32"
        assert str(FLOAT) == "float"
        assert str(DOUBLE) == "double"


class TestVectorTypes:
    def test_size(self):
        assert VectorType(FLOAT, 4).size == 16
        assert VectorType(I32, 2).size == 8

    def test_float3_pads_to_4(self):
        assert VectorType(FLOAT, 3).size == 16

    def test_bad_widths(self):
        with pytest.raises(ValueError):
            VectorType(FLOAT, 5)

    def test_element_must_be_scalar(self):
        with pytest.raises(ValueError):
            VectorType(VectorType(FLOAT, 4), 2)

    def test_equality(self):
        assert VectorType(FLOAT, 4) == VectorType(FLOAT, 4)
        assert VectorType(FLOAT, 4) != VectorType(FLOAT, 2)


class TestPointerTypes:
    def test_default_space_is_private(self):
        assert PointerType(FLOAT).addrspace == AddressSpace.PRIVATE

    def test_size_is_8(self):
        assert PointerType(FLOAT, AddressSpace.GLOBAL).size == 8

    def test_spaces_distinguish(self):
        g = PointerType(FLOAT, AddressSpace.GLOBAL)
        l = PointerType(FLOAT, AddressSpace.LOCAL)
        assert g != l

    def test_str_includes_addrspace(self):
        assert "addrspace(1)" in str(PointerType(FLOAT, AddressSpace.GLOBAL))
        assert "addrspace(3)" in str(PointerType(FLOAT, AddressSpace.LOCAL))


class TestArrayTypes:
    def test_size(self):
        assert ArrayType(FLOAT, 16).size == 64

    def test_nested_dims(self):
        a = ArrayType(ArrayType(FLOAT, 8), 4)
        assert a.dims() == (4, 8)
        assert a.size == 4 * 8 * 4
        assert a.base_element() == FLOAT

    def test_three_dims(self):
        a = ArrayType(ArrayType(ArrayType(I32, 2), 3), 5)
        assert a.dims() == (5, 3, 2)

    def test_positive_length_required(self):
        with pytest.raises(ValueError):
            ArrayType(FLOAT, 0)


class TestPredicates:
    def test_classification(self):
        assert is_integer(I32) and not is_integer(FLOAT)
        assert is_float(DOUBLE) and not is_float(I32)
        assert is_scalar(I32) and is_scalar(FLOAT) and is_scalar(BOOL)
        assert not is_scalar(VectorType(FLOAT, 4))
        assert is_pointer(PointerType(FLOAT))
        assert is_vector(VectorType(I32, 4))


class TestAddressSpace:
    def test_short_names(self):
        assert AddressSpace.GLOBAL.short_name() == "global"
        assert AddressSpace.LOCAL.short_name() == "local"
        assert AddressSpace.PRIVATE.short_name() == "private"
        assert AddressSpace.CONSTANT.short_name() == "constant"

    def test_spir_numbering(self):
        assert int(AddressSpace.PRIVATE) == 0
        assert int(AddressSpace.GLOBAL) == 1
        assert int(AddressSpace.CONSTANT) == 2
        assert int(AddressSpace.LOCAL) == 3
