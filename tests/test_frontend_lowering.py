"""Unit tests for AST -> IR lowering: structure and diagnostics."""

import pytest

from repro.frontend import FrontendError, compile_kernel, compile_source
from repro.frontend.errors import UnsupportedFeature
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Cast,
    GEP,
    Load,
    Opcode,
    Store,
)
from repro.ir.types import (
    AddressSpace,
    ArrayType,
    FLOAT,
    I32,
    PointerType,
    U32,
    VectorType,
)


def k(body: str, params: str = "__global float* out", extra: str = "") -> str:
    return f"{extra}\n__kernel void t({params}) {{ {body} }}"


class TestSignatures:
    def test_pointer_address_spaces(self):
        fn = compile_kernel(
            k("out[0] = 0.0f;", "__global float* out, __local float* scratch, int n")
        )
        assert fn.arg("out").type.addrspace == AddressSpace.GLOBAL
        assert fn.arg("scratch").type.addrspace == AddressSpace.LOCAL
        assert fn.arg("n").type == I32

    def test_unqualified_kernel_pointer_defaults_to_global(self):
        fn = compile_kernel(k("out[0] = 0.0f;", "float* out"))
        assert fn.arg("out").type.addrspace == AddressSpace.GLOBAL

    def test_constant_space_maps_to_global(self):
        fn = compile_kernel(k("out[0] = w[0];", "__global float* out, __constant float* w"))
        assert fn.arg("w").type.addrspace in (
            AddressSpace.GLOBAL,
            AddressSpace.CONSTANT,
        )

    def test_scalar_types(self):
        fn = compile_kernel(
            k("out[0] = 0.0f;", "__global float* out, uint a, uchar b, ulong c, short d")
        )
        assert fn.arg("a").type == U32
        assert str(fn.arg("b").type) == "u8"
        assert str(fn.arg("c").type) == "u64"
        assert str(fn.arg("d").type) == "i16"

    def test_kernel_flag(self):
        mod = compile_source(k("out[0] = 0.0f;"))
        assert mod.kernel("t").is_kernel


class TestLocalDeclarations:
    def test_local_array_registered(self):
        fn = compile_kernel(k("__local float lm[8][4]; lm[0][0] = 1.0f; out[0]=lm[0][0];"))
        (la,) = fn.local_arrays
        assert la.name == "lm"
        assert la.array_type.dims() == (8, 4)

    def test_local_array_dim_constant_expr(self):
        fn = compile_kernel(
            k("__local float lm[N*2]; lm[0]=1.0f; out[0]=lm[0];", extra="#define N 8")
        )
        assert fn.local_arrays[0].array_type.count == 16

    def test_local_scalar_rejected(self):
        with pytest.raises(UnsupportedFeature, match="must be arrays"):
            compile_kernel(k("__local float x; out[0] = 0.0f;"))

    def test_local_initialiser_rejected(self):
        with pytest.raises(FrontendError, match="initialisers"):
            compile_kernel(k("__local float lm[4] = {0}; out[0] = 0.0f;"))

    def test_private_array_allocated(self):
        fn = compile_kernel(k("float tmp[4]; tmp[0] = 1.0f; out[0] = tmp[0];"))
        allocas = [i for i in fn.instructions() if isinstance(i, Alloca)]
        assert any(isinstance(a.allocated_type, ArrayType) for a in allocas)


class TestDiagnostics:
    def test_undeclared_identifier(self):
        with pytest.raises(FrontendError, match="undeclared"):
            compile_kernel(k("out[0] = nope;"))

    def test_unknown_function(self):
        with pytest.raises(UnsupportedFeature, match="unknown function"):
            compile_kernel(k("out[0] = frobnicate(1.0f);"))

    def test_unknown_type(self):
        with pytest.raises(FrontendError):
            compile_kernel(k("quaternion q; out[0] = 0.0f;"))

    def test_parse_error_reported(self):
        with pytest.raises(FrontendError, match="parse error"):
            compile_kernel("__kernel void t(__global float* o) { o[0] = ; }")

    def test_break_outside_loop(self):
        with pytest.raises(FrontendError, match="break"):
            compile_kernel(k("break;"))

    def test_continue_outside_loop(self):
        with pytest.raises(FrontendError, match="continue"):
            compile_kernel(k("continue;"))

    def test_subscript_non_pointer(self):
        with pytest.raises(FrontendError, match="non-pointer|subscript"):
            compile_kernel(k("int x; out[0] = x[1];"))

    def test_bad_array_dim(self):
        with pytest.raises(FrontendError, match="constant"):
            compile_kernel(k("int n = 4; float a[n]; out[0] = 0.0f;"))


class TestExpressionsStructure:
    def test_vector_member_access(self):
        fn = compile_kernel(
            k("float4 v = vload4(0, out); out[0] = v.x + v.w;")
        )
        from repro.ir.instructions import ExtractElement

        assert any(isinstance(i, ExtractElement) for i in fn.instructions())

    def test_vector_member_store(self):
        src = k("float4 v = vload4(0, out); v.y = 2.0f; vstore4(v, 0, out);")
        fn = compile_kernel(src)
        from repro.ir.instructions import InsertElement

        assert any(isinstance(i, InsertElement) for i in fn.instructions())

    def test_vload_becomes_real_load(self):
        fn = compile_kernel(k("float4 v = vload4(2, out); vstore4(v, 3, out);"))
        vec_loads = [
            i
            for i in fn.instructions()
            if isinstance(i, Load) and isinstance(i.type, VectorType)
        ]
        assert vec_loads, "vload4 must lower to a Load instruction"
        vec_stores = [
            i
            for i in fn.instructions()
            if isinstance(i, Store) and isinstance(i.value.type, VectorType)
        ]
        assert vec_stores

    def test_pointer_arithmetic_becomes_gep(self):
        fn = compile_kernel(k("__global float* p = out + 4; p[1] = 2.0f;"))
        assert any(isinstance(i, GEP) for i in fn.instructions())

    def test_pointer_cast_keeps_addrspace(self):
        src = k(
            "__global float4* v = (__global float4*)out; "
            "float4 x = v[1]; vstore4(x, 0, out);"
        )
        fn = compile_kernel(src)
        casts = [i for i in fn.instructions() if isinstance(i, Cast)]
        ptr_casts = [c for c in casts if isinstance(c.type, PointerType)]
        assert ptr_casts
        assert ptr_casts[0].type.addrspace == AddressSpace.GLOBAL

    def test_work_item_builtins_typed_i64(self):
        fn = compile_kernel(k("out[get_global_id(0)] = 1.0f;"))
        calls = [i for i in fn.instructions() if isinstance(i, Call)]
        assert any(c.callee == "get_global_id" and str(c.type) == "i64" for c in calls)

    def test_barrier_lowered(self):
        fn = compile_kernel(
            k("__local float lm[4]; lm[0]=out[0]; barrier(CLK_LOCAL_MEM_FENCE); out[0]=lm[0];")
        )
        assert any(
            isinstance(i, Call) and i.callee == "barrier" for i in fn.instructions()
        )

    def test_char_literal(self):
        fn = compile_kernel(
            k("if (t[0] == 'a') out[0] = 1.0f;", "__global float* out, __global uchar* t")
        )
        assert fn is not None

    def test_sizeof_type(self):
        fn = compile_kernel(k("out[0] = (float)sizeof(float);"))
        assert fn is not None


class TestControlFlowStructure:
    def test_for_loop_blocks(self):
        fn = compile_kernel(k("for (int i = 0; i < 4; ++i) out[i] = 0.0f;"))
        names = {bb.name.split(".")[0] for bb in fn.blocks}
        assert "for" in names

    def test_while_and_do(self):
        fn = compile_kernel(
            k("int i = 0; while (i < 4) { out[i] = 0.0f; i = i + 1; } "
              "do { i = i - 1; } while (i > 0);")
        )
        assert len(fn.blocks) > 4

    def test_nested_if_else(self):
        fn = compile_kernel(
            k("int g = get_global_id(0); if (g > 2) { if (g > 4) out[0]=1.0f; "
              "else out[0]=2.0f; } else out[0]=3.0f;")
        )
        assert fn is not None

    def test_return_in_branch(self):
        fn = compile_kernel(
            k("if (get_global_id(0) == 0) { out[0] = 1.0f; return; } out[1] = 2.0f;")
        )
        assert fn is not None
