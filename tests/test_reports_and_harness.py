"""Coverage for report objects, the app harness, and small API surfaces."""

import numpy as np
import pytest

from repro.apps.harness import AppRun, compile_app, run_app
from repro.apps.registry import get_app
from repro.core import GroverPass, disable_local_memory
from repro.core.grover import CandidateRecord, GroverReport
from repro.frontend import compile_kernel

from tests.conftest import MM_SOURCE, MT_SOURCE, REDUCTION_SOURCE


class TestGroverReportAPI:
    def test_fully_disabled_false_when_rejected(self):
        fn = compile_kernel(REDUCTION_SOURCE)
        report = disable_local_memory(fn, allow_partial=True)
        assert not report.fully_disabled
        assert report.rejected and not report.transformed

    def test_fully_disabled_false_on_empty(self):
        assert not GroverReport("k").fully_disabled

    def test_ll_record_render(self):
        fn = compile_kernel(MT_SOURCE)
        report = disable_local_memory(fn)
        (rec,) = report.records
        text = rec.lls[0].render()
        assert "LL=" in text and "sol[" in text and "nGL=" in text

    def test_report_str_shows_rejections(self):
        fn = compile_kernel(REDUCTION_SOURCE)
        report = disable_local_memory(fn, allow_partial=True)
        assert "[--] sm" in str(report)

    def test_mixed_kernel_partial(self):
        """One reversible and one unreversible array in a single kernel."""
        src = """
__kernel void mixed(__global float* out, __global const float* in)
{
    __local float ok[16];
    __local float scratch[16];
    int lx = get_local_id(0);
    ok[lx] = in[get_global_id(0)];
    scratch[lx] = in[get_global_id(0)] * 2.0f;  /* computed: rejected */
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = ok[15 - lx] + scratch[lx];
}
"""
        fn = compile_kernel(src)
        report = disable_local_memory(fn, allow_partial=True)
        assert {r.status for r in report.records} == {"transformed", "rejected"}
        # the rejected array must survive untouched
        assert [la.name for la in fn.local_arrays] == ["scratch"]
        # the barrier must stay: scratch still uses local memory
        from repro.ir.instructions import is_barrier

        assert any(is_barrier(i) for i in fn.instructions())


class TestAppHarness:
    def test_bad_variant_rejected(self):
        with pytest.raises(ValueError, match="variant"):
            compile_app(get_app("NVD-MT"), "sideways")

    def test_run_app_returns_outputs_and_report(self):
        run = run_app(get_app("NVD-MT"), "without", "test")
        assert isinstance(run, AppRun)
        assert run.report is not None and run.report.fully_disabled
        assert "out" in run.outputs
        assert run.trace is None  # not requested

    def test_run_app_with_trace(self):
        run = run_app(get_app("AMD-SS"), "with", "test", collect_trace=True)
        assert run.trace is not None
        assert run.trace.sampled_groups == run.trace.total_groups

    def test_grover_kwargs_forwarded(self):
        run = run_app(get_app("NVD-MM-AB"), "without", "test",
                      remove_barriers=False)
        from repro.apps.harness import compile_app as ca

        kernel, report = ca(get_app("NVD-MM-AB"), "without", remove_barriers=False)
        from repro.ir.instructions import is_barrier

        assert any(is_barrier(i) for i in kernel.instructions())


class TestQualifierEdgeCases:
    def test_bare_kernel_keyword(self):
        src = "kernel void k(__global float* o) { o[get_global_id(0)] = 1.0f; }"
        fn = compile_kernel(src)
        assert fn.is_kernel

    def test_constant_qualified_pointer(self):
        src = """
__kernel void k(__global float* o, __constant float* w)
{
    o[get_global_id(0)] = w[0];
}
"""
        fn = compile_kernel(src)
        assert fn is not None

    def test_constant_space_load_accepted_as_gl(self):
        """Staging from __constant memory is still the GL of the pattern."""
        src = """
__kernel void k(__global float* o, __constant float* w)
{
    __local float lm[16];
    int lx = get_local_id(0);
    lm[lx] = w[lx];
    barrier(CLK_LOCAL_MEM_FENCE);
    o[get_global_id(0)] = lm[15 - lx];
}
"""
        fn = compile_kernel(src)
        report = disable_local_memory(fn)
        assert report.fully_disabled


class TestModuleLevelAPI:
    def test_top_level_exports(self):
        import repro

        assert callable(repro.compile_kernel)
        assert callable(repro.disable_local_memory)
        assert repro.__version__

    def test_grover_pass_defaults(self):
        p = GroverPass()
        assert p.arrays is None
        assert p.reuse_subexprs and p.remove_barriers
        assert not p.strict_patterns and not p.allow_partial
