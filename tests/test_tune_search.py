"""The autotuner wired into the search: pruning accelerates, never
decides — winners match the untuned search and stay verified.  Plus the
config plumbing, the Session entry point and the ``repro tune`` CLI."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.search import SearchOptions, search_app
from repro.session import Session, events
from repro.session.config import ConfigError
from repro.session.events import validate_event
from repro.tune.model import default_model_path, load_model

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _search(app_id, tune, **kw):
    kw.setdefault("workers", 1)
    kw.setdefault("depth", 2)
    opts = SearchOptions(apps=(app_id,), tune=tune, **kw)
    return search_app(app_id, opts)


# ---------------------------------------------------------------------------
# search integration
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("app_id", ["NVD-MT", "PAB-ST"])
def test_tuned_search_reproduces_the_untuned_winner(app_id):
    base = _search(app_id, tune=False)
    with events.collect() as sink:
        tuned = _search(app_id, tune=True)
    # the predictor is an accelerator: same winner, fewer simulations,
    # verification untouched
    assert tuned.winner.pipeline == base.winner.pipeline
    assert tuned.winner.rewrites == base.winner.rewrites
    assert tuned.winner.cycles == base.winner.cycles
    assert tuned.verified and base.verified
    assert tuned.pruned > 0
    # fewer candidates reached the (expensive) scoring launches
    assert len(tuned.candidates) < len(base.candidates)
    assert len(tuned.candidates) + tuned.pruned >= len(base.candidates)
    for e in sink.events:
        validate_event(e.kind, e.payload)
    predicts = sink.of_kind("tune_predict")
    assert predicts
    for e in predicts:
        assert 0.0 <= e.payload["p_win"] <= 1.0
        assert e.payload["threshold"] == pytest.approx(0.25)
    end = sink.of_kind("search_end")[0].payload
    assert end["pruned"] == tuned.pruned
    # every pruned candidate left a visible reason
    pruned_events = [
        e for e in sink.of_kind("search_candidate")
        if e.payload["error"].startswith("pruned:")
    ]
    assert len(pruned_events) == tuned.pruned


def test_untuned_search_reports_zero_pruned():
    r = _search("PAB-ST", tune=False, depth=1)
    assert r.pruned == 0


def test_absurd_threshold_degrades_to_the_default_pipeline():
    """Even a threshold that prunes every model-voted candidate cannot
    break the search: the winner falls back to the (always-verified)
    default pipeline."""
    with Session(env={}, tune_threshold=2.0).activate():
        r = _search("NVD-MT", tune=True, depth=1)
    assert r.winner.pipeline == ()
    assert r.verified
    assert r.pruned > 0


def test_tuned_search_rejects_a_missing_model(tmp_path):
    with Session(env={}, tune_model=str(tmp_path / "nope.json")).activate():
        with pytest.raises(ValueError, match="cannot read tune model"):
            _search("NVD-MT", tune=True, depth=1)


# ---------------------------------------------------------------------------
# config plumbing
# ---------------------------------------------------------------------------


def test_tune_threshold_is_a_float_config():
    assert Session(env={}).get("tune_threshold") == 0.25
    s = Session(env={"REPRO_TUNE_THRESHOLD": "0.5"})
    assert s.get("tune_threshold") == 0.5
    assert Session(env={}, tune_threshold=0.75).get("tune_threshold") == 0.75
    # ints widen, bools and junk do not
    assert Session(env={}, tune_threshold=1).get("tune_threshold") == 1.0
    with pytest.raises(ConfigError, match="must be a number"):
        Session(env={"REPRO_TUNE_THRESHOLD": "lots"}).get("tune_threshold")
    with pytest.raises(ConfigError):
        Session(env={}, tune_threshold=True)


def test_tune_model_is_a_path_config(tmp_path):
    assert Session(env={}).get("tune_model") is None
    p = str(tmp_path / "m.json")
    assert Session(env={"REPRO_TUNE_MODEL": p}).get("tune_model") == p


# ---------------------------------------------------------------------------
# Session entry point + CLI
# ---------------------------------------------------------------------------


def test_session_tune_predict_loads_the_committed_model():
    pred = Session(env={}).tune("predict")
    assert pred.path == default_model_path()
    assert pred.sha256 == load_model(default_model_path()).sha256
    with pytest.raises(TypeError, match="no kwargs"):
        Session(env={}).tune("predict", extra=1)
    with pytest.raises(ValueError, match="unknown tune action"):
        Session(env={}).tune("bogus")


def test_session_tune_train_on_a_small_slice(tmp_path):
    out = tmp_path / "model.json"
    tree, meta = Session(env={}).tune(
        "train", out=str(out), sources=("corpus",), depth=1,
        devices=("Fermi",), train_sources=("corpus",), workers=1,
    )
    assert out.exists()
    pred = load_model(str(out))
    assert pred.payload["training"]["examples"] == meta["examples"]
    assert meta["examples"] > 50


def _cli(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(_ROOT, "src"), env.get("PYTHONPATH", ""))
        if p
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, env=env, cwd=_ROOT,
    )


def test_cli_tune_train_and_predict(tmp_path):
    out = str(tmp_path / "model.json")
    proc = _cli(
        "tune", "train", "--out", out, "--sources", "corpus",
        "--depth", "1", "--devices", "Fermi", "--train-sources", "corpus",
        "--workers", "1",
    )
    assert proc.returncode == 0, proc.stderr
    assert "sha256" in proc.stdout
    load_model(out)  # integrity-checked artifact

    proc = _cli(
        "tune", "predict", "--app", "NVD-MT",
        "--pipeline", "pad-local-arrays", "--model", out,
    )
    assert proc.returncode == 0, proc.stderr
    assert "p(win)" in proc.stdout and ("go" in proc.stdout
                                        or "no-go" in proc.stdout)

    proc = _cli("tune", "predict", "--app", "NVD-MT",
                "--pipeline", "pad-local-arrays",
                "--model", str(tmp_path / "missing.json"))
    assert proc.returncode == 1
