"""Differential fuzzing: random C expressions vs a reference evaluator.

Hypothesis generates random integer arithmetic expressions over the
work-item id and constants; each is compiled through the full pipeline
(preprocessor -> pycparser -> lowering -> optimisation passes) and
executed on the SIMT interpreter, then compared against a direct Python
evaluation with C semantics.  This exercises operator lowering, type
promotion, constant folding, CSE and LICM against an independent oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import run_scalar_kernel

N = 16


# -- expression AST ------------------------------------------------------------

class E:
    pass


def wrap32(v):
    """Two's-complement wrap to i32 (C overflow semantics)."""
    v &= 0xFFFFFFFF
    return v - 2**32 if v >= 2**31 else v


class Lit(E):
    def __init__(self, v):
        self.v = v

    def c(self):
        return str(self.v)

    def eval(self, g):
        return self.v


class Gid(E):
    def c(self):
        return "gid"

    def eval(self, g):
        return g


class Bin(E):
    def __init__(self, op, a, b):
        self.op, self.a, self.b = op, a, b

    def c(self):
        return f"({self.a.c()} {self.op} {self.b.c()})"

    def eval(self, g):
        a = self.a.eval(g)
        b = self.b.eval(g)
        if a is None or b is None:
            return None
        if self.op == "+":
            return wrap32(a + b)
        if self.op == "-":
            return wrap32(a - b)
        if self.op == "*":
            return wrap32(a * b)
        if self.op == "/":
            if b == 0:
                return None  # UB: case skipped by the test
            return wrap32(int(a / b))
        if self.op == "%":
            if b == 0:
                return None
            return wrap32(a - int(a / b) * b)
        if self.op == "&":
            return wrap32(a & b)
        if self.op == "|":
            return wrap32(a | b)
        if self.op == "^":
            return wrap32(a ^ b)
        raise AssertionError(self.op)


class Tern(E):
    def __init__(self, cond_op, a, b, t, f):
        self.cond_op, self.a, self.b, self.t, self.f = cond_op, a, b, t, f

    def c(self):
        return (
            f"(({self.a.c()} {self.cond_op} {self.b.c()}) ? {self.t.c()} : {self.f.c()})"
        )

    def eval(self, g):
        a, b = self.a.eval(g), self.b.eval(g)
        if a is None or b is None:
            return None
        table = {
            "<": a < b, "<=": a <= b, ">": a > b,
            ">=": a >= b, "==": a == b, "!=": a != b,
        }
        t, f = self.t.eval(g), self.f.eval(g)
        if t is None or f is None:
            return None  # C evaluates one arm, but skip to stay conservative
        return t if table[self.cond_op] else f


@st.composite
def exprs(draw, depth=0):
    if depth >= 3:
        return draw(
            st.one_of(
                st.builds(Lit, st.integers(-20, 20)),
                st.just(Gid()),
            )
        )
    kind = draw(st.integers(0, 8))
    if kind <= 1:
        return draw(st.builds(Lit, st.integers(-20, 20)))
    if kind == 2:
        return Gid()
    if kind == 3:
        return Tern(
            draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="])),
            draw(exprs(depth=depth + 1)),
            draw(exprs(depth=depth + 1)),
            draw(exprs(depth=depth + 1)),
            draw(exprs(depth=depth + 1)),
        )
    op = draw(st.sampled_from(["+", "-", "*", "/", "%", "&", "|", "^"]))
    return Bin(op, draw(exprs(depth=depth + 1)), draw(exprs(depth=depth + 1)))


@settings(max_examples=60, deadline=None)
@given(e=exprs())
def test_expression_matches_reference(e):
    expected = []
    for g in range(N):
        v = e.eval(g)
        if v is None:
            return  # division by zero somewhere: C UB, skip the case
        expected.append(int(v))

    src = f"""
__kernel void t(__global int* out)
{{
    int gid = get_global_id(0);
    out[gid] = {e.c()};
}}
"""
    _, outs = run_scalar_kernel(src, {}, (N,), (N,), {"out": (np.int32, (N,))})
    np.testing.assert_array_equal(
        outs["out"], np.array(expected, np.int32), err_msg=f"expr: {e.c()}"
    )


@settings(max_examples=30, deadline=None)
@given(e=exprs(), f=exprs())
def test_loop_accumulation_matches_reference(e, f):
    """The same expressions inside a loop (exercises LICM correctness)."""
    trip = 3
    vals_e = [e.eval(g) for g in range(N)]
    vals_f = [f.eval(g) for g in range(N)]
    if any(v is None for v in vals_e + vals_f):
        return
    expected = []
    for g in range(N):
        acc = 0
        for i in range(trip):
            acc = wrap32(acc + wrap32(vals_e[g] * i) + vals_f[g])
        expected.append(acc)

    src = f"""
__kernel void t(__global int* out)
{{
    int gid = get_global_id(0);
    int acc = 0;
    for (int i = 0; i < {trip}; ++i)
        acc += ({e.c()}) * i + ({f.c()});
    out[gid] = acc;
}}
"""
    _, outs = run_scalar_kernel(src, {}, (N,), (N,), {"out": (np.int32, (N,))})
    np.testing.assert_array_equal(outs["out"], np.array(expected, np.int32))
