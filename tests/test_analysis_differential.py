"""The differential Grover arbiter: analyzer vs solver on every app.

ISSUE-4 acceptance: across all 11 registered applications the analyzer
must report every Grover-transformed kernel race-free post-transform,
and must independently flag the irreversible access on every kernel
Grover rejects.  The apps all transform, so the rejected direction is
exercised with synthetic kernels spanning the three rejection shapes
(singular map, non-integral inverse, computed staging) plus the
adversarial example kernels under ``examples/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro.apps  # noqa: F401  (registers the 11 apps)
from repro.analysis import RaceDetected, analyze_source, differential_check
from repro.apps.registry import all_apps
from repro.core import GroverPass
from repro.frontend import compile_kernel
from repro.session import Session, events

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize("app", all_apps(), ids=lambda a: a.id)
def test_differential_contract_holds_per_app(app):
    result = differential_check(app)
    assert result.ok, result.problems
    assert result.transformed  # every app transforms at least one array
    assert result.post is not None and result.post.verdict == "clean"
    assert result.pre is not None and result.pre.verdict == "clean"


# ---------------------------------------------------------------------------
# the rejected direction: Grover refuses AND the analyzer flags 'lm'
# ---------------------------------------------------------------------------

REJECTED_KERNELS = {
    # non-injective store map: two work-items share a local slot
    "singular": (
        """
__kernel void k(__global float* out, __global const float* in) {
    __local float lm[64];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    lm[lx + ly] = in[get_global_id(1)*32 + get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(1)*32 + get_global_id(0)] = lm[lx + ly];
}
""",
        (32, 32),
        (8, 8),
        "race",
    ),
    # stride-2 store, stride-1 load: odd slots are never staged
    "nonintegral": (
        """
__kernel void k(__global float* out, __global const float* in) {
    __local float lm[128];
    int lx = get_local_id(0);
    lm[2*lx] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[lx];
}
""",
        (256,),
        (64,),
        "irreversible",
    ),
    # computed value staged: no global address to redirect the load to
    "computed": (
        """
__kernel void k(__global float* out, __global const float* in) {
    __local float lm[64];
    int lx = get_local_id(0);
    lm[lx] = in[get_global_id(0)] * 2.0f + 1.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[lx];
}
""",
        (256,),
        (64,),
        "irreversible",
    ),
}


@pytest.mark.parametrize(
    "name", sorted(REJECTED_KERNELS), ids=sorted(REJECTED_KERNELS)
)
def test_rejected_kernels_are_flagged_by_both_arbiters(name):
    src, gsize, lsize, verdict = REJECTED_KERNELS[name]
    kernel = compile_kernel(src)
    report = GroverPass(allow_partial=True).run(kernel)
    assert [r.name for r in report.rejected] == ["lm"]

    analysis = analyze_source(src, global_size=gsize, local_size=lsize)
    assert analysis.verdict == verdict
    assert analysis.findings_on("lm"), "the rejected array carries a finding"


# ---------------------------------------------------------------------------
# the adversarial example kernels (also pinned by CI's golden file)
# ---------------------------------------------------------------------------


def test_racy_halo_example_fools_grover_but_not_the_analyzer():
    src = (EXAMPLES / "racy_halo.cl").read_text()
    kernel = compile_kernel(src)
    # each store's index map is individually invertible, so the Eq. 3
    # solver accepts — the kernel's race makes it undefined, which is
    # exactly what the independent arbiter exists to catch
    report = GroverPass(allow_partial=True).run(kernel)
    assert [r.name for r in report.transformed] == ["lm"]

    analysis = analyze_source(src, global_size=(256,), local_size=(64,))
    assert analysis.verdict == "race"
    assert any(f.kind == "race-ww" and f.decided_by == "static"
               for f in analysis.findings)


def test_divergent_barrier_example_flagged_statically_and_dynamically():
    src = (EXAMPLES / "divergent_barrier.cl").read_text()
    analysis = analyze_source(src, global_size=(256,), local_size=(64,))
    assert analysis.verdict == "divergent"
    decided = {f.decided_by for f in analysis.divergences}
    assert decided == {"static", "dynamic"}
    dynamic = next(f for f in analysis.divergences if f.decided_by == "dynamic")
    assert dynamic.group_id is not None


# ---------------------------------------------------------------------------
# the Session veto gate (REPRO_ANALYZE / Session(analyze=True))
# ---------------------------------------------------------------------------


def test_session_analyze_gate_vetoes_racy_transform():
    src = (EXAMPLES / "racy_halo.cl").read_text()
    s = Session(env={}, analyze=True)
    kernel = s.compile_kernel(src)
    with pytest.raises(RaceDetected, match="race-ww on local 'lm'"):
        s.disable_local_memory(kernel, local_size=(64,))


def test_session_analyze_gate_passes_clean_kernels():
    src = (EXAMPLES / "transpose.cl").read_text()
    s = Session(env={}, analyze=True)
    kernel = s.compile_kernel(src)
    report = s.disable_local_memory(kernel, local_size=(16, 16))
    assert [r.name for r in report.transformed] == ["lm"]


def test_gate_off_by_default():
    src = (EXAMPLES / "racy_halo.cl").read_text()
    s = Session(env={})
    kernel = s.compile_kernel(src)
    report = s.disable_local_memory(kernel, local_size=(64,))  # no veto
    assert [r.name for r in report.transformed] == ["lm"]


# ---------------------------------------------------------------------------
# events and passes integration
# ---------------------------------------------------------------------------


def test_analysis_events_are_emitted_and_schema_valid():
    src = (EXAMPLES / "racy_halo.cl").read_text()
    with events.collect() as sink:
        analyze_source(src, global_size=(256,), local_size=(64,))
    kinds = sink.kinds()
    assert "analysis_start" in kinds
    assert "analysis_finding" in kinds
    assert kinds[-1] == "analysis_end"
    end = sink.of_kind("analysis_end")[-1]
    assert end.payload["verdict"] == "race"
    finding = sink.of_kind("analysis_finding")[0]
    assert finding.payload["finding"] == "race-ww"
    assert finding.payload["object"] == "lm"


def test_golden_summary_has_not_drifted(capsys):
    """The checked-in CI golden: 22 app rows + 2 adversarial kernels."""
    from repro.analysis.cli import main as analyze_main

    golden = Path(__file__).resolve().parent / "golden" / "analyze.txt"
    rc = analyze_main([
        "--all-apps", "--variant", "both",
        str(EXAMPLES / "racy_halo.cl"),
        str(EXAMPLES / "divergent_barrier.cl"),
        "--global-size", "256", "--local-size", "64",
        "--golden", str(golden),
    ])
    out = capsys.readouterr().out
    assert rc == 0, f"golden drift:\n{out}"
    rows = [ln for ln in out.splitlines() if "verdict=" in ln]
    assert len(rows) == 26


def test_analyzer_passes_are_registered_and_run():
    from repro.session.passes import PassManager

    src = (EXAMPLES / "divergent_barrier.cl").read_text()
    kernel = compile_kernel(src)
    results = PassManager(["analyze-races", "analyze-divergence"]).run_function(
        kernel
    )
    by_name = {r.pass_name: r for r in results}
    assert by_name["analyze-divergence"].rewrites == 1
    # diagnosis passes never mutate the IR
    assert all(r.insts_before == r.insts_after for r in results)
