"""Out-of-core trace spill: bounded residency, transparent rehydration.

``TraceSpillStore`` keeps the resident bytes of completed trace batches
under ``REPRO_TRACE_SPILL_MB``: segments past the mark are pickled,
zlib-compressed and appended to an anonymous temp file, and a group's
``events`` becomes a ``LazyEvents`` view that streams the segment back
on first access.  The contract: consumers never notice — every event is
bit-identical to the eager in-RAM trace, through spill, rehydration and
pickling (worker shards) — and resident bytes stay bounded while a
launch produces a trace far larger than the mark.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.frontend import compile_kernel
from repro.ir.types import AddressSpace
from repro.parallel.diff import assert_traces_equal
from repro.runtime import Memory, launch
from repro.runtime.trace import GroupTrace, LazyEvents, MemEvent, TraceSpillStore
from repro.session import Session, events

# ---------------------------------------------------------------------------
# store unit tests
# ---------------------------------------------------------------------------


def _group(gid: int, n_events: int = 4, n_lanes: int = 4096) -> GroupTrace:
    evs = [
        MemEvent(
            AddressSpace.GLOBAL,
            bool(i % 2),
            1,
            (np.arange(n_lanes, dtype=np.int64) * 4 + gid * 100_000),
            np.arange(n_lanes, dtype=np.int64),
            4,
            0,
            i,
        )
        for i in range(n_events)
    ]
    return GroupTrace((gid,), n_lanes, events=evs)


def test_store_spills_past_the_limit_and_rehydrates_bit_identically():
    groups = [_group(i) for i in range(6)]
    originals = [
        [(e.inst_id, e.is_store, e.offsets.copy(), e.lanes.copy())
         for e in g.events]
        for g in groups
    ]
    per_group = sum(
        e.offsets.nbytes + e.lanes.nbytes for e in groups[0].events
    )

    store = TraceSpillStore(limit_bytes=2 * per_group, kernel="unit")
    with events.collect() as sink:
        for g in groups:
            store.adopt_group_lists({0: g})

    assert store.spill_count >= 1
    assert store.spilled_bytes > 0
    assert store.resident_bytes <= store.limit_bytes
    assert store.peak_resident_bytes <= store.limit_bytes + per_group
    spills = sink.of_kind("trace_spill")
    assert len(spills) == store.spill_count
    for e in spills:
        assert e.payload["kernel"] == "unit"
        assert e.payload["bytes"] > 0
        assert e.payload["resident_bytes"] <= store.limit_bytes

    # every group now reads back bit-identically, spilled or not; the
    # reads themselves re-evict, so residency stays bounded throughout
    for g, orig in zip(groups, originals):
        assert isinstance(g.events, LazyEvents)
        got = list(g.iter_events())
        assert len(got) == len(orig)
        for e, (inst_id, is_store, offs, lanes) in zip(got, orig):
            assert e.inst_id == inst_id and e.is_store == is_store
            np.testing.assert_array_equal(e.offsets, offs)
            np.testing.assert_array_equal(e.lanes, lanes)
        assert store.resident_bytes <= store.limit_bytes + per_group

    # a re-read of an already-spilled-once segment costs no new blob
    written = store.spilled_bytes
    list(groups[0].iter_events())
    assert store.spilled_bytes == written


def test_lazy_events_quack_like_lists_and_pickle_self_contained():
    g = _group(0, n_events=3, n_lanes=8)
    store = TraceSpillStore(limit_bytes=1, kernel="unit")
    store.adopt_group_lists({0: g})  # immediately over the mark: spilled
    assert store.spill_count == 1
    lazy = g.events
    assert isinstance(lazy, LazyEvents)
    assert len(lazy) == 3
    assert lazy[1].inst_id == 1
    assert [e.inst_id for e in lazy] == [0, 1, 2]
    # pickling materialises (worker shards must not carry the store)
    plain = pickle.loads(pickle.dumps(lazy))
    assert isinstance(plain, list)
    assert [e.inst_id for e in plain] == [0, 1, 2]
    np.testing.assert_array_equal(plain[2].offsets, lazy[2].offsets)


def test_adopt_skips_empty_and_none_traces():
    store = TraceSpillStore(limit_bytes=1, kernel="unit")
    store.adopt(None)
    store.adopt_group_lists({0: None, 1: GroupTrace((1,), 4)})
    assert store.spill_count == 0 and store.resident_bytes == 0


def test_close_releases_the_spill_file_and_is_idempotent():
    g = _group(0, n_events=3, n_lanes=8)
    store = TraceSpillStore(limit_bytes=1, kernel="unit")
    store.adopt_group_lists({0: g})  # over the mark: file created
    assert store._file is not None and not store.closed
    store.close()
    store.close()  # idempotent
    assert store.closed and store._file is None
    # a closed store refuses both directions
    with pytest.raises(RuntimeError, match="closed"):
        list(g.iter_events())
    with pytest.raises(RuntimeError, match="closed"):
        store.adopt_group_lists({0: _group(1, n_events=3, n_lanes=8)})


def _deleted_tmp_fds() -> set:
    """fd numbers holding anonymous (deleted) temp files — what a
    leaked ``TemporaryFile`` looks like on Linux."""
    import os

    out = set()
    for fd in os.listdir("/proc/self/fd"):
        try:
            target = os.readlink(f"/proc/self/fd/{fd}")
        except OSError:
            continue
        if "(deleted)" in target:
            out.add(fd)
    return out


_FAULTY_SPILL_SOURCE = r"""
__kernel void faulty(__global float* out, __global const float* in, int P)
{
    int gi = get_global_id(0);
    float acc = 0.0f;
    for (int i = 0; i < 256; i++) {
        acc += in[(gi + i) % 1024];
    }
    out[gi * P] = acc;
}
"""


def test_failed_launch_closes_the_spill_fd():
    """A launch that faults after spilling must not leave the store's
    anonymous spill fd open until garbage collection: ``launch()``'s
    exception path closes the store eagerly (trace of a failed launch
    is never returned), pinned here by scanning ``/proc/self/fd``."""
    from repro.runtime.errors import MemoryFault

    kernel = compile_kernel(_FAULTY_SPILL_SOURCE)
    data = np.ones(1024, dtype=np.float32)
    mem = Memory()
    inb = mem.from_array(data, "in")
    outb = mem.alloc(1024 * 4, "out")  # gi*2 overflows past gi=511

    before = _deleted_tmp_fds()
    with Session(trace_spill_mb=1).activate():
        with pytest.raises((MemoryFault, IndexError)):
            launch(
                kernel, (1024,), (16,), {"in": inb, "out": outb, "P": 2},
                memory=mem, collect_trace=True,
            )
    assert _deleted_tmp_fds() == before, "failed launch leaked its spill fd"


# ---------------------------------------------------------------------------
# launch-level: a trace far past the mark completes, bounded and identical
# ---------------------------------------------------------------------------

_SPILL_SOURCE = r"""
__kernel void spill(__global float* out, __global const float* in)
{
    int gi = get_global_id(0);
    float acc = 0.0f;
    for (int i = 0; i < 256; i++) {
        acc += in[(gi + i) % 1024];
        out[gi] = acc;
    }
}
"""


@pytest.mark.parametrize("backend", ("tape", "codegen"))
def test_launch_past_the_spill_mark_is_bounded_and_bit_identical(backend):
    kernel = compile_kernel(_SPILL_SOURCE)
    rng = np.random.default_rng(5)
    data = rng.standard_normal(1024).astype(np.float32)

    def run(spill_mb, tape_batch=8):
        mem = Memory()
        inb = mem.from_array(data, "in")
        outb = mem.alloc(1024 * 4, "out")
        overrides = {"exec_backend": backend, "tape_batch": tape_batch}
        if spill_mb is not None:
            overrides["trace_spill_mb"] = spill_mb
        with Session(**overrides).activate():
            with events.collect() as sink:
                res = launch(
                    kernel, (1024,), (16,), {"in": inb, "out": outb},
                    memory=mem, collect_trace=True,
                )
        out = outb.read(np.float32, 1024)
        return res.trace, out, sink

    ref_trace, ref_out, ref_sink = run(None)
    assert not ref_sink.of_kind("trace_spill"), "default mark must not spill"
    # the launch's trace is far larger than the 1 MiB mark below
    trace_bytes = sum(
        e.offsets.nbytes + e.lanes.nbytes for e in ref_trace.iter_events()
    )
    assert trace_bytes > 4 * 1024 * 1024

    trace, out, sink = run(1)
    spills = sink.of_kind("trace_spill")
    assert spills, "a 1 MiB mark must force spilling"
    # each spill event snapshots residency mid-enforcement; the burst
    # always ends under the mark, and no snapshot ever exceeds the mark
    # by more than the one segment whose adoption triggered it
    limit = 1024 * 1024
    assert spills[-1].payload["resident_bytes"] <= limit
    assert max(e.payload["resident_bytes"] for e in spills) < 2 * limit
    np.testing.assert_array_equal(ref_out, out)
    assert_traces_equal(ref_trace, trace, f"{backend} spill=1MiB")
