"""Launch error paths for the sharded engine.

Bad ``workers`` values and worker crashes mid-shard must surface as
:class:`RuntimeLaunchError` — with the failing flat group range for
crashes — never as a raw ``multiprocessing`` traceback or a bare
``ValueError`` from deep inside the pool plumbing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.frontend import compile_kernel
from repro.parallel.engine import WORKERS_ENV, resolve_workers
from repro.runtime import Memory, launch
from repro.runtime.errors import MemoryFault, RuntimeLaunchError

_SOURCE = r"""
__kernel void copy(__global float* out, __global const float* in)
{
    out[get_global_id(0)] = in[get_global_id(0)];
}
"""

# groups other than group 0 read far outside the input buffer, so the
# fault happens mid-shard in a worker that already ran one group fine
_FAULTY_SOURCE = r"""
__kernel void faulty(__global float* out, __global const float* in)
{
    int idx = get_global_id(0);
    if (get_group_id(0) > 0)
        idx = idx + (1 << 20);
    out[get_global_id(0)] = in[idx];
}
"""


def _launch_with(source, workers, groups=4, lsize=8):
    kernel = compile_kernel(source)
    n = groups * lsize
    mem = Memory()
    data = np.arange(n, dtype=np.float32)
    args = {"in": mem.from_array(data, "in"), "out": mem.alloc(data.nbytes, "out")}
    return launch(
        kernel, (n,), (lsize,), args, memory=mem,
        collect_trace=True, workers=workers,
    )


# ---------------------------------------------------------------------------
# bad `workers` arguments
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("bad", [0, -1, 2.5, "two", True, False])
def test_bad_workers_raise_launch_error(bad):
    with pytest.raises(RuntimeLaunchError, match="workers"):
        _launch_with(_SOURCE, workers=bad)


@pytest.mark.parametrize("bad", [0, -1, 2.5, "two", True])
def test_resolve_workers_rejects_bad_values(bad):
    with pytest.raises(ValueError, match="workers"):
        resolve_workers(bad)


# ---------------------------------------------------------------------------
# $REPRO_WORKERS environment default
# ---------------------------------------------------------------------------


def test_env_supplies_default_workers(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "3")
    assert resolve_workers(None) == 3
    assert resolve_workers(2) == 2  # explicit argument beats the env


def test_env_one_is_the_serial_escape_hatch(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "1")
    assert resolve_workers(None) == 1


@pytest.mark.parametrize("bad", ["zero", "", "0", "-2", "1.5"])
def test_invalid_env_raises(monkeypatch, bad):
    monkeypatch.setenv(WORKERS_ENV, bad)
    with pytest.raises(ValueError, match=WORKERS_ENV):
        resolve_workers(None)


def test_invalid_env_surfaces_as_launch_error(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "banana")
    with pytest.raises(RuntimeLaunchError, match=WORKERS_ENV):
        _launch_with(_SOURCE, workers=None)


# ---------------------------------------------------------------------------
# worker crash mid-shard
# ---------------------------------------------------------------------------


def test_serial_fault_is_the_raw_error():
    with pytest.raises((MemoryFault, IndexError)) as excinfo:
        _launch_with(_FAULTY_SOURCE, workers=1)
    assert not isinstance(excinfo.value, RuntimeLaunchError)


def test_worker_fault_names_the_failing_group_range():
    with pytest.raises(RuntimeLaunchError) as excinfo:
        _launch_with(_FAULTY_SOURCE, workers=2)
    msg = str(excinfo.value)
    assert "flat groups" in msg  # the failing group range is named
    assert "IndexError" in msg or "MemoryFault" in msg  # cause survives
    assert "shard" in msg


def test_worker_fault_range_covers_the_faulting_group():
    """With 4 groups over 2 workers, only shard 0 contains the healthy
    group 0; whichever shard fails, its reported range must exclude a
    range that is only group 0."""
    with pytest.raises(RuntimeLaunchError) as excinfo:
        _launch_with(_FAULTY_SOURCE, workers=2, groups=4)
    assert "flat groups 0..0" not in str(excinfo.value)


# ---------------------------------------------------------------------------
# ISSUE-4 exception narrowing: KeyboardInterrupt/SystemExit propagate,
# deterministic kernel errors are not retried as pool failures
# ---------------------------------------------------------------------------


class _FakeFuture:
    def __init__(self, exc):
        self._exc = exc

    def result(self):
        raise self._exc


class _FakePool:
    """Pool double whose every future raises a chosen exception."""

    def __init__(self, exc):
        self._exc = exc

    def __enter__(self):
        return self

    def __exit__(self, *a):
        return False

    def submit(self, fn, *args, **kwargs):
        return _FakeFuture(self._exc)


def test_launch_wraps_worker_exceptions_as_launch_error(monkeypatch):
    import repro.parallel.engine as engine

    monkeypatch.setattr(engine, "make_pool", lambda n: _FakePool(RuntimeError("boom")))
    with pytest.raises(RuntimeLaunchError, match="died: RuntimeError: boom"):
        _launch_with(_SOURCE, workers=2)


@pytest.mark.parametrize("exc_type", [KeyboardInterrupt, SystemExit])
def test_launch_lets_interrupts_propagate(monkeypatch, exc_type):
    import repro.parallel.engine as engine

    monkeypatch.setattr(engine, "make_pool", lambda n: _FakePool(exc_type()))
    with pytest.raises(exc_type) as excinfo:
        _launch_with(_SOURCE, workers=2)
    assert not isinstance(excinfo.value, RuntimeLaunchError)


def _run_small_matrix(monkeypatch, exc):
    import repro.parallel.matrix as matrix
    from repro.perf.devices import CPU_DEVICES

    monkeypatch.setattr(matrix, "make_pool", lambda n: _FakePool(exc))
    dev = next(iter(CPU_DEVICES))
    return matrix.run_matrix(
        apps=["AMD-MM", "AMD-MT"], devices=[dev], workers=2, scale="test"
    )


@pytest.mark.parametrize(
    "exc",
    [
        RuntimeLaunchError("bad binding"),
        MemoryFault("oob"),
    ],
)
def test_matrix_does_not_retry_deterministic_kernel_errors(monkeypatch, exc):
    with pytest.raises(RuntimeLaunchError, match="not retrying"):
        _run_small_matrix(monkeypatch, exc)


def test_matrix_does_not_retry_barrier_divergence(monkeypatch):
    from repro.runtime.errors import BarrierDivergenceError

    with pytest.raises(RuntimeLaunchError, match="not retrying"):
        _run_small_matrix(monkeypatch, BarrierDivergenceError("diverged"))


def test_matrix_retries_pool_infrastructure_failures(monkeypatch):
    result = _run_small_matrix(monkeypatch, RuntimeError("lost worker"))
    # both cases recomputed serially, values intact
    assert set(result.retried) == {"AMD-MM", "AMD-MT"}
    assert all(v > 0 for per_app in result.values.values() for v in per_app.values())


@pytest.mark.parametrize("exc_type", [KeyboardInterrupt, SystemExit])
def test_matrix_lets_interrupts_propagate(monkeypatch, exc_type):
    with pytest.raises(exc_type):
        _run_small_matrix(monkeypatch, exc_type())
