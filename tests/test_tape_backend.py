"""The tape-compiled execution backend: bit-identity, eviction, cleanup.

The tape backend (``REPRO_EXEC_BACKEND=tape``, the default) records one
pilot group's block schedule, compiles it to closures and replays it
with work-groups stacked on a leading batch axis.  Its contract is
bit-identity with the reference per-group scheduler: identical
``KernelTrace`` streams (events, phases, instruction counts), identical
output buffer bytes — for any batch size, any worker count, and for
kernels whose groups diverge from the pilot's schedule (those are
evicted to the scalar path mid-replay).

Also covered here: the iterative ``_reverse_postorder`` on a deep
single-chain CFG, and ``launch``'s exception path (arena buffers freed,
``launch_end`` emitted with ``error=``).
"""

from __future__ import annotations

import sys

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import replay_trace
from repro.frontend import compile_kernel
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.parallel.diff import assert_outputs_equal, assert_traces_equal
from repro.runtime import Memory, launch
from repro.runtime.errors import MemoryFault
from repro.runtime.interpreter import _reverse_postorder
from repro.session import Session, events

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _traced_launch(
    kernel,
    args_spec,
    gsize,
    lsize,
    outs,
    *,
    backend,
    tape_batch=256,
    workers=None,
    sample_groups=None,
):
    """Launch under ``backend`` and return (trace, outputs dict)."""
    mem = Memory()
    args = {}
    bufs = {}
    for name, v in args_spec.items():
        if isinstance(v, np.ndarray):
            bufs[name] = mem.from_array(v, name)
            args[name] = bufs[name]
        else:
            args[name] = v
    for name, (dtype, shape) in outs.items():
        if name not in bufs:
            nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
            bufs[name] = mem.alloc(nbytes, name)
            args[name] = bufs[name]
    with Session(exec_backend=backend, tape_batch=tape_batch).activate():
        res = launch(
            kernel, gsize, lsize, args, memory=mem,
            collect_trace=True, sample_groups=sample_groups, workers=workers,
        )
    outputs = {
        name: bufs[name].read(np.dtype(dtype), int(np.prod(shape))).reshape(shape)
        for name, (dtype, shape) in outs.items()
    }
    return res.trace, outputs


# ---------------------------------------------------------------------------
# iterative reverse post-order (satellite: recursion-free CFG walk)
# ---------------------------------------------------------------------------


def test_reverse_postorder_survives_deep_chain_cfg():
    """A 3000-block single chain must not hit the recursion limit."""
    fn = Function("chain", [], [])
    blocks = [fn.add_block(f"b{i}") for i in range(3000)]
    b = IRBuilder()
    for cur, nxt in zip(blocks, blocks[1:]):
        b.position_at_end(cur)
        b.br(nxt)
    b.position_at_end(blocks[-1])
    b.ret()

    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(200)  # a recursive walk would need ~3000 frames
    try:
        rpo = _reverse_postorder(fn)
    finally:
        sys.setrecursionlimit(limit)
    assert [bb for bb, _ in sorted(rpo.items(), key=lambda kv: kv[1])] == blocks


# ---------------------------------------------------------------------------
# randomized affine kernels: tape == reference, bit for bit
# ---------------------------------------------------------------------------

_AFFINE_SOURCE = r"""
__kernel void aff(__global float* out, __global const float* in)
{
    __local float lm[64];
    int li = get_local_id(0);
    int gi = get_global_id(0);
    lm[(CA*li + CB) % 64] = in[(CC*gi + CD*li + CE) % 128];
    barrier(CLK_LOCAL_MEM_FENCE);
    float v = lm[(CF*li + CG) % 64];
    out[gi] = v + lm[li];
}
"""


@settings(max_examples=8, deadline=None)
@given(coeffs=st.tuples(*[st.integers(0, 7) for _ in range(7)]))
def test_tape_matches_reference_on_random_affine_kernels(coeffs):
    """Random affine access patterns, batch {1,4,all} x workers {1,2}."""
    defines = dict(zip(("CA", "CB", "CC", "CD", "CE", "CF", "CG"), coeffs))
    kernel = compile_kernel(_AFFINE_SOURCE, defines=defines)
    rng = np.random.default_rng(1234)
    data = rng.standard_normal(128).astype(np.float32)
    spec = {"in": data}
    outs = {"out": (np.float32, (128,))}

    ref_trace, ref_out = _traced_launch(
        kernel, spec, (128,), (16,), outs, backend="reference"
    )
    assert len(ref_trace.groups) == 8

    for tape_batch in (1, 4, 8):
        for workers in (1, 2):
            ctx = f"coeffs={coeffs} batch={tape_batch} workers={workers}"
            trace, out = _traced_launch(
                kernel, spec, (128,), (16,), outs,
                backend="tape", tape_batch=tape_batch, workers=workers,
            )
            assert_traces_equal(ref_trace, trace, ctx)
            assert_outputs_equal(ref_out, out, ctx)

    # the dynamic byte-replay arbiter reaches identical verdicts on both
    tape_trace, _ = _traced_launch(
        kernel, spec, (128,), (16,), outs, backend="tape"
    )
    ref_report = replay_trace(ref_trace, kernel=kernel)
    tape_report = replay_trace(tape_trace, kernel=kernel)
    assert len(ref_report.findings) == len(tape_report.findings)


# ---------------------------------------------------------------------------
# divergence eviction: groups that disagree with the pilot's schedule
# ---------------------------------------------------------------------------

_EVICT_SOURCE = r"""
__kernel void ev(__global float* out, __global const float* in)
{
    int gi = get_global_id(0);
    int wg = get_group_id(0);
    float acc = in[gi];
    if (wg % 2 == 1) {           /* group-uniform, differs from pilot */
        acc = acc * 2.0f + 1.0f;
    }
    if ((gi / (wg + 1)) % 2 == 0) {   /* mask shape varies per group */
        acc += 3.0f;
    }
    out[gi] = acc;
}
"""


@pytest.mark.parametrize("tape_batch", (1, 4, 256))
def test_divergent_groups_evict_to_scalar_path(tape_batch):
    kernel = compile_kernel(_EVICT_SOURCE)
    rng = np.random.default_rng(7)
    data = rng.standard_normal(128).astype(np.float32)
    spec = {"in": data}
    outs = {"out": (np.float32, (128,))}

    ref_trace, ref_out = _traced_launch(
        kernel, spec, (128,), (16,), outs, backend="reference"
    )
    with events.collect() as sink:
        trace, out = _traced_launch(
            kernel, spec, (128,), (16,), outs,
            backend="tape", tape_batch=tape_batch,
        )
    ctx = f"eviction batch={tape_batch}"
    assert_traces_equal(ref_trace, trace, ctx)
    assert_outputs_equal(ref_out, out, ctx)
    evicts = sink.of_kind("tape_evict")
    assert evicts, "divergent kernel must actually evict groups"
    replays = sink.of_kind("tape_replay")
    assert sum(e.payload["evicted"] for e in replays) == len(evicts)


def test_eviction_composes_with_sampling_and_workers():
    kernel = compile_kernel(_EVICT_SOURCE)
    rng = np.random.default_rng(11)
    data = rng.standard_normal(256).astype(np.float32)
    spec = {"in": data}
    outs = {"out": (np.float32, (256,))}
    ref_trace, _ = _traced_launch(
        kernel, spec, (256,), (16,), outs,
        backend="reference", sample_groups=9,
    )
    for workers in (1, 2):
        trace, _ = _traced_launch(
            kernel, spec, (256,), (16,), outs,
            backend="tape", workers=workers, sample_groups=9,
        )
        assert_traces_equal(ref_trace, trace, f"evict workers={workers}")


# ---------------------------------------------------------------------------
# launch exception path: arenas freed, launch_end carries error=
# ---------------------------------------------------------------------------

_FAULT_SOURCE = r"""
__kernel void oob(__global float* out, __global const float* in)
{
    __local float lm[16];
    int gi = get_global_id(0);
    int wg = get_group_id(0);
    lm[get_local_id(0)] = in[gi];
    barrier(CLK_LOCAL_MEM_FENCE);
    /* the pilot group (wg 0) survives; later groups store far past
       the buffer end and fault mid-replay */
    out[gi + wg * 1000000] = lm[get_local_id(0)];
}
"""


@pytest.mark.parametrize("backend", ("reference", "tape"))
def test_faulting_launch_frees_arenas_and_reports_error(backend):
    kernel = compile_kernel(_FAULT_SOURCE)
    mem = Memory()
    rng = np.random.default_rng(3)
    inb = mem.from_array(rng.standard_normal(64).astype(np.float32), "in")
    outb = mem.alloc(64 * 4, "out")
    user_ids = set(mem.buffers)

    with Session(exec_backend=backend).activate():
        with events.collect() as sink:
            with pytest.raises((IndexError, MemoryFault)):
                launch(
                    kernel, (64,), (16,), {"in": inb, "out": outb},
                    memory=mem, collect_trace=True,
                )
    ends = sink.of_kind("launch_end")
    assert len(ends) == 1
    assert ends[0].payload["error"] != ""
    assert ends[0].payload["groups_executed"] == 0
    # every launch-owned arena (local, private, tape scratch) was freed
    assert set(mem.buffers) == user_ids


def test_successful_launch_end_has_empty_error():
    kernel = compile_kernel(_EVICT_SOURCE)
    mem = Memory()
    inb = mem.from_array(np.ones(64, dtype=np.float32), "in")
    outb = mem.alloc(64 * 4, "out")
    with events.collect() as sink:
        launch(kernel, (64,), (16,), {"in": inb, "out": outb}, memory=mem)
    ends = sink.of_kind("launch_end")
    assert len(ends) == 1
    assert ends[0].payload["error"] == ""
