"""Tests for the CPU/GPU timing models and device table."""

import numpy as np
import pytest

from repro.frontend import compile_kernel
from repro.perf import (
    CPUModel,
    GPUModel,
    DEVICES,
    device,
    estimate_cost,
    normalized_performance,
)
from repro.perf.devices import CPU_DEVICES, GPU_DEVICES, MIC, SNB, FERMI
from repro.perf.timing import classify
from repro.runtime import Memory, launch

from tests.conftest import MT_SOURCE


def mt_trace(n=32, local=(16, 16)):
    kernel = compile_kernel(MT_SOURCE)
    mem = Memory()
    a = np.zeros((n, n), np.float32)
    inb, outb = mem.from_array(a), mem.alloc(a.nbytes)
    res = launch(
        kernel,
        (n, n),
        local,
        {"in": inb, "out": outb, "W": n, "H": n},
        collect_trace=True,
    )
    return res.trace


COALESCE_SRC = """
__kernel void k(__global float* out, __global const float* in, int stride)
{
    int gid = get_global_id(0);
    out[gid] = in[gid * stride];
}
"""


def strided_trace(stride):
    kernel = compile_kernel(COALESCE_SRC)
    mem = Memory()
    n = 64
    inb = mem.from_array(np.zeros(n * max(1, stride), np.float32))
    outb = mem.alloc(n * 4)
    res = launch(
        kernel,
        (n,),
        (64,),
        {"in": inb, "out": outb, "stride": stride},
        collect_trace=True,
    )
    return res.trace


class TestDeviceTable:
    def test_paper_platforms_present(self):
        assert set(DEVICES) == {"SNB", "Nehalem", "MIC", "Fermi", "Kepler", "Tahiti"}
        assert set(CPU_DEVICES) == {"SNB", "Nehalem", "MIC"}
        assert set(GPU_DEVICES) == {"Fermi", "Kepler", "Tahiti"}

    def test_lookup(self):
        assert device("SNB") is SNB
        with pytest.raises(KeyError):
            device("EPYC")

    def test_mic_has_distributed_llc(self):
        assert MIC.l3 is None

    def test_gpu_flags(self):
        assert FERMI.is_gpu and not SNB.is_gpu


class TestCPUModel:
    def test_cycles_positive_and_scale(self):
        trace = mt_trace()
        m = CPUModel(SNB)
        total = m.time_kernel(trace)
        assert total > 0
        per_group = [m.time_group(g).cycles for g in trace.groups]
        assert total == pytest.approx(sum(per_group))

    def test_more_memory_traffic_costs_more(self):
        m = CPUModel(SNB)
        t_small = mt_trace(n=16)
        t_big = mt_trace(n=64)
        assert m.time_kernel(t_big) > m.time_kernel(t_small)

    def test_local_arena_is_warm(self):
        """Local-space lines must not produce cold memory misses."""
        m = CPUModel(SNB)
        g = mt_trace().groups[0]
        cost = m.time_group(g)
        # in-tile (16 lines) + out-tile (16 lines) cold misses only
        assert cost.memory_misses <= 32

    def test_barrier_cost_counted(self):
        m = CPUModel(SNB)
        g = mt_trace().groups[0]
        cost = m.time_group(g)
        assert cost.barrier_cycles == SNB.barrier_cost * g.work_items

    def test_mic_has_no_l3_level(self):
        m = CPUModel(MIC)
        assert len(m._hierarchy().levels) == 2
        m2 = CPUModel(SNB)
        assert len(m2._hierarchy().levels) == 3


class TestGPUModel:
    def test_coalesced_vs_strided_transactions(self):
        m = GPUModel(FERMI)
        dense = m.time_group(strided_trace(1).groups[0])
        strided = m.time_group(strided_trace(32).groups[0])
        assert strided.transactions > dense.transactions
        assert strided.cycles > dense.cycles

    def test_warp_granularity(self):
        m = GPUModel(FERMI)
        cost = m.time_group(strided_trace(1).groups[0])
        # 64 lanes = 2 warps; dense reads coalesce into 2 x 2 segments
        # (256 B per warp / 128 B segments) + output stores
        assert cost.transactions <= 10

    def test_spm_bank_conflicts(self):
        src = """
__kernel void k(__global float* out, int stride)
{
    __local float lm[2048];
    int lx = get_local_id(0);
    lm[lx * stride] = (float)lx;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[lx * stride];
}
"""
        kernel1 = compile_kernel(src)
        m = GPUModel(FERMI)

        def run(stride):
            mem = Memory()
            outb = mem.alloc(64 * 4)
            res = launch(
                kernel1,
                (64,),
                (64,),
                {"out": outb, "stride": stride},
                collect_trace=True,
            )
            return m.time_group(res.trace.groups[0])

        conflict_free = run(1)
        conflicted = run(32)  # stride 32 words: every lane hits bank 0
        assert conflicted.spm_cycles > conflict_free.spm_cycles

    def test_l1_toggle_changes_cost(self):
        from dataclasses import replace

        # a kernel with global-read reuse: the second read of the same
        # segments hits L1 (cheap) or only L2 (Kepler-style), so the
        # toggle must change the estimate
        src = """
__kernel void k(__global float* out, __global const float* in)
{
    int gid = get_global_id(0);
    out[gid] = in[gid] + in[63 - gid];
}
"""
        kernel = compile_kernel(src)
        mem = Memory()
        inb = mem.from_array(np.zeros(64, np.float32))
        outb = mem.alloc(64 * 4)
        trace = launch(
            kernel, (64,), (64,), {"in": inb, "out": outb}, collect_trace=True
        ).trace
        with_l1 = GPUModel(FERMI).time_kernel(trace)
        no_l1 = GPUModel(replace(FERMI, global_l1=False)).time_kernel(trace)
        assert no_l1 > with_l1


class TestTimingHelpers:
    def test_estimate_and_normalize(self):
        trace = mt_trace()
        c1 = estimate_cost(trace, "SNB")
        c2 = estimate_cost(trace, SNB)
        assert c1.cycles == c2.cycles
        assert c1.device == "SNB"
        np_ratio = normalized_performance(c1, c2)
        assert np_ratio == 1.0

    def test_classify(self):
        assert classify(1.2) == "gain"
        assert classify(0.8) == "loss"
        assert classify(1.01) == "similar"
        assert classify(1.04999) == "similar"
        assert classify(1.06) == "gain"

    def test_speedup_over(self):
        trace = mt_trace()
        c1 = estimate_cost(trace, "SNB")
        c2 = estimate_cost(trace, "MIC")
        assert c1.speedup_over(c2) == pytest.approx(c2.cycles / c1.cycles)
