"""Compile cache isolation and model memoization consistency."""

import numpy as np
import pytest

from repro.core import GroverPass
from repro.frontend import clear_compile_cache, compile_kernel, compile_source
from repro.frontend.compile import _compile_cache
from repro.perf import CPUModel, GPUModel
from repro.perf.devices import FERMI, SNB

from tests.conftest import MM_SOURCE, MT_SOURCE
from tests.test_perf_models import mt_trace


# -- compile cache --------------------------------------------------------------


def test_cache_hit_returns_equivalent_module():
    clear_compile_cache()
    m1 = compile_source(MT_SOURCE)
    m2 = compile_source(MT_SOURCE)
    assert m1 is not m2  # caller owns a private copy
    k1, k2 = m1.kernel(None), m2.kernel(None)
    assert k1.name == k2.name
    assert len(list(k1.blocks)) == len(list(k2.blocks))


def test_cache_isolates_in_place_mutation():
    """GroverPass mutates kernels in place; a later cache hit must see
    the pristine compile, not the transformed one."""
    clear_compile_cache()
    k1 = compile_kernel(MT_SOURCE)
    n_local_before = len(k1.local_arrays)
    assert n_local_before > 0
    GroverPass().run(k1)  # removes the __local tile
    assert len(k1.local_arrays) == 0
    k2 = compile_kernel(MT_SOURCE)  # cache hit
    assert len(k2.local_arrays) == n_local_before


def test_cache_key_includes_defines_and_optimize():
    clear_compile_cache()
    compile_source(MM_SOURCE)
    compile_source(MM_SOURCE, defines={"EXTRA": 1})
    compile_source(MM_SOURCE, optimize=False)
    assert len(_compile_cache) == 3


def test_cache_bypass_and_clear():
    clear_compile_cache()
    compile_source(MT_SOURCE, cache=False)
    assert len(_compile_cache) == 0
    compile_source(MT_SOURCE)
    assert len(_compile_cache) == 1
    clear_compile_cache()
    assert len(_compile_cache) == 0


def test_cache_is_bounded():
    from repro.frontend.compile import _COMPILE_CACHE_SIZE

    clear_compile_cache()
    for i in range(_COMPILE_CACHE_SIZE + 5):
        compile_source(MT_SOURCE, defines={"TAG": i})
    assert len(_compile_cache) == _COMPILE_CACHE_SIZE
    clear_compile_cache()


# -- model memoization ----------------------------------------------------------


def test_cpu_memo_consistent_with_per_group_sum():
    trace = mt_trace()
    model = CPUModel(SNB, memoize=True)
    total = model.time_kernel(trace)
    # memoized time_kernel must equal scale * sum(time_group) exactly
    per_group = sum(model.time_group(g).cycles for g in trace.groups)
    assert total == pytest.approx(trace.scale * per_group)


def test_cpu_memo_reuses_identical_groups():
    trace = mt_trace()
    model = CPUModel(SNB, memoize=True)
    model.time_kernel(trace)
    prints = {g.fingerprint() for g in trace.groups}
    assert len(model._group_costs) == len(prints)
    # identical fingerprints share the identical cost object
    a = model.time_group(trace.groups[0])
    b = model.time_group(trace.groups[-1])
    if trace.groups[0].fingerprint() == trace.groups[-1].fingerprint():
        assert a is b


def test_memo_off_recomputes():
    trace = mt_trace()
    model = CPUModel(SNB, memoize=False)
    model.time_kernel(trace)
    assert model._group_costs == {}


def test_memo_matches_exact_on_homogeneous_trace():
    """When every group has the same fingerprint, memoization is exact."""
    trace = mt_trace()
    assert len({g.fingerprint() for g in trace.groups}) == 1
    exact = CPUModel(SNB, memoize=False).time_kernel(trace)
    memo = CPUModel(SNB, memoize=True).time_kernel(trace)
    assert memo == pytest.approx(exact)
    g_exact = GPUModel(FERMI, memoize=False).time_kernel(trace)
    g_memo = GPUModel(FERMI, memoize=True).time_kernel(trace)
    assert g_memo == pytest.approx(g_exact)


def test_memo_env_switch(monkeypatch):
    monkeypatch.setenv("REPRO_PERF_MEMO", "0")
    assert CPUModel(SNB).memoize is False
    assert GPUModel(FERMI).memoize is False
    monkeypatch.setenv("REPRO_PERF_MEMO", "1")
    assert CPUModel(SNB).memoize is True
    # explicit argument beats the environment
    assert CPUModel(SNB, memoize=False).memoize is False


def test_fingerprint_distinguishes_different_patterns():
    from repro.ir.types import AddressSpace
    from repro.runtime.trace import GroupTrace, MemEvent

    def ev(offsets, store=False):
        offs = np.asarray(offsets, np.int64)
        return MemEvent(
            AddressSpace.GLOBAL, store, 7, offs,
            np.arange(len(offs), dtype=np.int64), 4, 0, 1,
        )

    a = GroupTrace((0,), 4, [ev([0, 4, 8, 12])], inst_count=10)
    # pure translation of the same pattern -> same fingerprint
    b = GroupTrace((1,), 4, [ev([64, 68, 72, 76])], inst_count=10)
    assert a.fingerprint() == b.fingerprint()
    # different stride -> different fingerprint
    c = GroupTrace((2,), 4, [ev([0, 8, 16, 24])], inst_count=10)
    assert a.fingerprint() != c.fingerprint()
    # a store is not a load
    d = GroupTrace((3,), 4, [ev([0, 4, 8, 12], store=True)], inst_count=10)
    assert a.fingerprint() != d.fingerprint()
