"""The pipeline-search engine: scoring, gating, events, CLI, config."""

from __future__ import annotations

import numpy as np
import pytest

from repro.search import (
    SearchOptions,
    evaluate_pipeline,
    render_search,
    run_search,
    search_app,
    verify_pipeline,
)
from repro.session import Session, events
from repro.session.events import validate_event


def _search(app_id="NVD-MT", **kw):
    kw.setdefault("workers", 1)
    return search_app(app_id, SearchOptions(apps=(app_id,), **kw))


# ---------------------------------------------------------------------------
# evaluation
# ---------------------------------------------------------------------------


def test_evaluate_empty_pipeline_is_the_default():
    ev = evaluate_pipeline("NVD-MT", (), "test", 8, "Fermi")
    assert ev.error == ""
    assert ev.pipeline == () and ev.rewrites == ()
    assert np.isfinite(ev.cycles) and ev.cycles > 0
    assert ev.label == "(default)"


def test_evaluate_is_deterministic():
    a = evaluate_pipeline("NVD-MT", ("pad-local-arrays",), "test", 8, "Fermi")
    b = evaluate_pipeline("NVD-MT", ("pad-local-arrays",), "test", 8, "Fermi")
    assert a == b
    assert a.rewrites == (1,)


def test_evaluate_unknown_rule_is_an_error_candidate():
    ev = evaluate_pipeline("NVD-MT", ("bogus",), "test", 8, "Fermi")
    assert ev.error and ev.cycles == float("inf")


def test_padding_changes_the_modelled_cycles():
    base = evaluate_pipeline("NVD-MT", (), "test", 8, "Fermi")
    padded = evaluate_pipeline(
        "NVD-MT", ("pad-local-arrays",), "test", 8, "Fermi"
    )
    # the transpose tile serialises on banks; padding must be visible
    # to the GPU model (that's the whole payoff being searched for)
    assert padded.cycles < base.cycles


# ---------------------------------------------------------------------------
# verification gates
# ---------------------------------------------------------------------------


def test_verify_accepts_default_and_legal_pipelines():
    ok, reason = verify_pipeline("NVD-MT", (), "test")
    assert ok, reason
    ok, reason = verify_pipeline("NVD-MT", ("pad-local-arrays",), "test")
    assert ok, reason


def test_verify_rejects_broken_pipelines():
    ok, reason = verify_pipeline("NVD-MT", ("bogus",), "test")
    assert not ok and "bogus" in reason


# ---------------------------------------------------------------------------
# error handling: what re-raises, what becomes an error candidate
# ---------------------------------------------------------------------------


class _StubRule:
    """A rule whose apply() raises a chosen exception."""

    name = "stub"
    description = "test stub"

    def __init__(self, exc):
        self._exc = exc

    def apply(self, kernel, ctx):
        raise self._exc

    def cost_features(self, kernel, ctx):
        return {}


def _install_stub_rule(monkeypatch, exc):
    import repro.rules as rules_mod

    real = rules_mod.get_rule

    def fake(name):
        if name == "stub":
            return _StubRule(exc)
        return real(name)

    monkeypatch.setattr(rules_mod, "get_rule", fake)


def test_evaluate_reraises_deterministic_toolchain_errors(monkeypatch):
    """FrontendError/VerificationError mean a rule emitted IR the
    toolchain rejects — a rule bug a serial rerun reproduces, never an
    'error candidate' to score past quietly."""
    from repro.frontend.errors import FrontendError
    from repro.ir.verifier import VerificationError

    _install_stub_rule(monkeypatch, VerificationError("stub broke the IR"))
    with pytest.raises(VerificationError, match="stub broke the IR"):
        evaluate_pipeline("NVD-MT", ("stub",), "test", 8, "Fermi")
    with pytest.raises(VerificationError, match="stub broke the IR"):
        verify_pipeline("NVD-MT", ("stub",), "test")

    _install_stub_rule(monkeypatch, FrontendError("stub lowering bug"))
    with pytest.raises(FrontendError, match="stub lowering bug"):
        evaluate_pipeline("NVD-MT", ("stub",), "test", 8, "Fermi")


def test_evaluate_keyboard_interrupt_propagates(monkeypatch):
    _install_stub_rule(monkeypatch, KeyboardInterrupt())
    with pytest.raises(KeyboardInterrupt):
        evaluate_pipeline("NVD-MT", ("stub",), "test", 8, "Fermi")
    with pytest.raises(KeyboardInterrupt):
        verify_pipeline("NVD-MT", ("stub",), "test")


def test_candidate_failure_reason_reaches_the_event(monkeypatch):
    """A candidate-specific runtime failure becomes an error candidate,
    and the search_candidate event carries the reason — dropping a
    candidate must leave a visible trace of why."""
    _install_stub_rule(monkeypatch, RuntimeError("transformed kernel faulted"))
    ev = evaluate_pipeline("NVD-MT", ("stub",), "test", 8, "Fermi")
    assert ev.error == "RuntimeError: transformed kernel faulted"
    assert ev.cycles == float("inf")

    with events.collect() as sink:
        r = _search(depth=1, rules=("stub",))
    # the search survives (winner falls back to the default pipeline)
    assert r.winner.pipeline == ()
    failed = [
        e for e in sink.of_kind("search_candidate")
        if e.payload["pipeline"] == ["stub"]
    ]
    assert failed
    assert failed[0].payload["kept"] is False
    assert failed[0].payload["error"] == (
        "RuntimeError: transformed kernel faulted"
    )
    for e in sink.events:
        validate_event(e.kind, e.payload)


# ---------------------------------------------------------------------------
# the search proper
# ---------------------------------------------------------------------------


def test_search_winner_never_worse_than_default():
    r = _search(depth=2)
    assert r.verified
    assert r.winner.cycles <= r.baseline.cycles
    assert r.speedup >= 1.0
    assert r.evaluated >= 1


def test_greedy_is_beam_one():
    greedy = _search(depth=2, beam=1)
    assert greedy.verified
    assert greedy.winner.cycles <= greedy.baseline.cycles


def test_search_respects_rule_subset():
    r = _search(depth=2, rules=("grover",))
    assert r.verified
    assert set(r.winner.pipeline) <= {"grover"}


def test_search_unknown_rule_fails_fast():
    with pytest.raises(KeyError, match="unknown rule"):
        _search(rules=("nope",))


def test_search_events_are_schema_valid():
    with events.collect() as sink:
        _search(depth=1)
    kinds = sink.kinds()
    assert "search_start" in kinds
    assert "search_candidate" in kinds
    assert "search_verified" in kinds
    assert kinds[-1] == "search_end"
    for ev in sink.events:
        validate_event(ev.kind, ev.payload)
    end = sink.of_kind("search_end")[0].payload
    assert end["verified"] is True
    assert end["cycles"] <= end["baseline_cycles"]


def test_session_config_reaches_the_resolver():
    # config plumbing only (the full sweep runs in CI): session knobs
    # must reach the resolver
    with Session(
        env={}, search_beam=1, search_depth=1, search_device="SNB"
    ).activate():
        r = _search(app_id="PAB-ST")
        assert r.device == "SNB"


def test_render_is_wall_clock_free():
    run = run_search(SearchOptions(apps=("NVD-MT",), depth=1, workers=1))
    text = render_search(run)
    assert "NVD-MT" in text and "winning pipeline" in text
    assert render_search(run) == text


# ---------------------------------------------------------------------------
# CLI + session entry point
# ---------------------------------------------------------------------------


def test_cli_search_golden_roundtrip(tmp_path, capsys):
    from repro.cli import main

    golden = tmp_path / "search.txt"
    argv = ["search", "--apps", "NVD-MT", "--depth", "1", "--workers", "1",
            "--golden", str(golden)]
    assert main(argv + ["--update-golden"]) == 0
    capsys.readouterr()
    assert main(argv) == 0
    assert "# golden ok" in capsys.readouterr().out


def test_cli_search_golden_drift_fails(tmp_path, capsys):
    from repro.cli import main

    golden = tmp_path / "search.txt"
    golden.write_text("stale report\n")
    assert main(["search", "--apps", "NVD-MT", "--depth", "1",
                 "--workers", "1", "--golden", str(golden)]) == 1
    assert "drifted" in capsys.readouterr().err


def test_cli_search_rejects_unknown_app(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["search", "--apps", "NOPE"])
    assert "unknown app" in capsys.readouterr().err


def test_session_search_entry_point():
    run = Session(env={}).search(apps=("NVD-MT",), depth=1, workers=1)
    assert len(run.results) == 1 and run.results[0].verified
    with pytest.raises(TypeError, match="not both"):
        Session(env={}).search(SearchOptions(), depth=1)


def test_bench_search_tier():
    from repro.perf.bench import SCHEMA_VERSION, bench_search

    assert SCHEMA_VERSION == 7
    with Session(env={}, search_depth=1).activate():
        out = bench_search(("NVD-MT",), workers=1)
    entry = out["apps"]["NVD-MT"]
    assert entry["searched_cycles"] <= entry["default_cycles"]
    assert isinstance(entry["pipeline"], list)
    assert entry["device"] == "Fermi"


def test_bench_tune_tier():
    from repro.perf.bench import bench_tune

    with Session(env={}, search_depth=1).activate():
        out = bench_tune(("NVD-MT",), workers=1)
    entry = out["apps"]["NVD-MT"]
    assert entry["verified"] is True
    assert entry["pruned"] > 0
    assert entry["scored_tuned"] < entry["scored_unpruned"]
    assert 0.0 <= entry["prediction_accuracy"] <= 1.0
    assert out["model_sha256"]
    assert out["threshold"] == 0.25
    assert out["pruned"] == entry["pruned"]


def test_cli_passes_lists_rule_metadata(capsys):
    from repro.cli import main

    assert main(["passes"]) == 0
    out = capsys.readouterr().out
    assert "legality arbiter" in out
    assert "eq3-invertibility" in out
    assert "counterfactual-race-analysis" in out
    assert "affine-bounds" in out
    assert "invariance + dominance" in out
    assert "rewrite rules" in out
