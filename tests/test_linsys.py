"""Tests for the linear system solver (Equation 3, Section IV-D)."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.core.linexpr import ONE, LinExpr, lid, wid
from repro.core.linsys import SolveError, solve_correspondence


def sym(s, c=1):
    return LinExpr.symbol(s, c)


def const(c):
    return LinExpr.constant(c)


LX, LY, LZ = lid(0), lid(1), lid(2)
#: distinct reader-side symbols (loop counters etc.)
K = ("slot", "k")
J = ("slot", "j")


class TestBasicSolves:
    def test_identity(self):
        # LS (lx, ly) = LL (lx, ly) -> writer == reader
        sol = solve_correspondence([sym(LX), sym(LY)], [sym(LX), sym(LY)])
        assert sol[LX] == sym(LX)
        assert sol[LY] == sym(LY)

    def test_transpose_swap(self):
        # the paper's MT: LS (lx, ly), LL (ly, lx) -> lx=ly, ly=lx
        sol = solve_correspondence([sym(LX), sym(LY)], [sym(LY), sym(LX)])
        assert sol[LX] == sym(LY)
        assert sol[LY] == sym(LX)

    def test_constant_offset(self):
        # halo: LS (lx+1), LL (lx) -> writer lx = lx - 1
        sol = solve_correspondence([sym(LX) + const(1)], [sym(LX)])
        assert sol[LX] == sym(LX) - const(1)

    def test_loop_counter_rhs(self):
        # MM inner loop: LS (lx), LL (k) -> lx = k
        sol = solve_correspondence([sym(LX)], [sym(K)])
        assert sol[LX] == sym(K)

    def test_scaled_unknown(self):
        # LS (2*lx), LL (ll) -> lx = ll/2: non-integral -> reject
        with pytest.raises(SolveError, match="integral"):
            solve_correspondence([sym(LX, 2)], [sym(K)])

    def test_scaled_but_divisible(self):
        # LS (2*lx), LL (2*k) -> lx = k is integral
        sol = solve_correspondence([sym(LX, 2)], [sym(K, 2)])
        assert sol[LX] == sym(K)

    def test_mixed_dims(self):
        # LS (lx + ly, ly), LL (a, b) -> ly = b, lx = a - b
        A = ("slot", "a")
        B = ("slot", "b")
        sol = solve_correspondence(
            [sym(LX) + sym(LY), sym(LY)], [sym(A), sym(B)]
        )
        assert sol[LY] == sym(B)
        assert sol[LX] == sym(A) - sym(B)

    def test_three_dims(self):
        sol = solve_correspondence(
            [sym(LX), sym(LY), sym(LZ)], [sym(LZ), sym(LX), sym(LY)]
        )
        assert sol[LX] == sym(LZ)
        assert sol[LY] == sym(LX)
        assert sol[LZ] == sym(LY)

    def test_group_symbols_pass_through(self):
        # LS (lx + wx), LL (k) -> lx = k - wx
        W = wid(0)
        sol = solve_correspondence([sym(LX) + sym(W)], [sym(K)])
        assert sol[LX] == sym(K) - sym(W)


class TestRejections:
    def test_dim_mismatch(self):
        with pytest.raises(SolveError, match="dimensionality"):
            solve_correspondence([sym(LX)], [sym(LX), sym(LY)])

    def test_singular_coupled(self):
        # LS (lx + ly) alone cannot determine both unknowns
        with pytest.raises(SolveError):
            solve_correspondence(
                [sym(LX) + sym(LY)], [sym(K)], required={LX, LY}
            )

    def test_free_unknown_ok_when_not_required(self):
        # lx+ly with only lx required... still coupled -> error
        with pytest.raises(SolveError, match="under-determined"):
            solve_correspondence([sym(LX) + sym(LY)], [sym(K)], required={LX})

    def test_missing_required_unknown(self):
        # LS uses only lx but GL needs ly
        with pytest.raises(SolveError, match="no unique solution"):
            solve_correspondence([sym(LX)], [sym(K)], required={LX, LY})

    def test_unrequired_free_unknown_tolerated(self):
        sol = solve_correspondence([sym(LX)], [sym(K)], required={LX})
        assert LX in sol

    def test_nonlinear_store_index(self):
        from repro.core.linexpr import prod_symbol

        p = prod_symbol(LX, ("arg", "W"))
        with pytest.raises(SolveError, match="non-linear"):
            solve_correspondence([sym(p)], [sym(K)])

    def test_degenerate_zero_row(self):
        # LS (0) = LL (0): nothing to solve, nothing required
        sol = solve_correspondence([const(0)], [const(0)])
        assert sol.by_symbol == {}


class TestSolutionRendering:
    def test_render(self):
        sol = solve_correspondence([sym(LX), sym(LY)], [sym(LY), sym(LX)])
        text = sol.render()
        assert "lx = ly" in text and "ly = lx" in text


# -- property-based: random unimodular systems round-trip -----------------------


@st.composite
def unimodular_2x2(draw):
    """Random integer 2x2 matrices with determinant ±1 (always solvable
    with an integral solution)."""
    a = draw(st.integers(-3, 3))
    b = draw(st.integers(-3, 3))
    # construct via elementary operations so |det| == 1
    m = [[1, a], [0, 1]]
    n = [[1, 0], [b, 1]]
    res = [
        [
            m[0][0] * n[0][0] + m[0][1] * n[1][0],
            m[0][0] * n[0][1] + m[0][1] * n[1][1],
        ],
        [
            m[1][0] * n[0][0] + m[1][1] * n[1][0],
            m[1][0] * n[0][1] + m[1][1] * n[1][1],
        ],
    ]
    return res


@given(
    unimodular_2x2(),
    st.integers(-5, 5),
    st.integers(-5, 5),
    st.integers(0, 15),
    st.integers(0, 15),
)
def test_unimodular_roundtrip(mat, c0, c1, vx, vy):
    """For LS = M*(lx,ly) + c and a concrete reader index, solving and
    substituting back must reproduce the LL index exactly."""
    (a, b), (c, d) = mat
    ls = [
        sym(LX, a) + sym(LY, b) + const(c0),
        sym(LX, c) + sym(LY, d) + const(c1),
    ]
    ll = [const(vx), const(vy)]
    sol = solve_correspondence(ls, ll, required={LX, LY})
    # substitute: both solutions are constants here
    sx = sol[LX].const()
    sy = sol[LY].const()
    assert a * sx + b * sy + c0 == vx
    assert c * sx + d * sy + c1 == vy
    assert sol[LX].is_integral() and sol[LY].is_integral()


@given(st.permutations([0, 1, 2]), st.integers(-4, 4), st.integers(-4, 4), st.integers(-4, 4))
def test_permutation_systems_roundtrip(perm, o0, o1, o2):
    """Permutation-with-offset stagings (the common kernel idiom) invert."""
    lids = [LX, LY, LZ]
    offs = [o0, o1, o2]
    ls = [sym(lids[perm[d]]) + const(offs[d]) for d in range(3)]
    readers = [("slot", f"r{d}") for d in range(3)]
    ll = [sym(readers[d]) for d in range(3)]
    sol = solve_correspondence(ls, ll, required=set(lids))
    for d in range(3):
        # equation d: lids[perm[d]] + offs[d] == reader_d
        assert sol[lids[perm[d]]] == sym(readers[d]) - const(offs[d])
