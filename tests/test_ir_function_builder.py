"""Unit tests for Function/BasicBlock/Module and the IRBuilder."""

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import Opcode
from repro.ir.types import ArrayType, FLOAT, I32, PointerType, VOID, AddressSpace
from repro.ir.values import Constant


def make_fn():
    return Function("f", [I32, PointerType(FLOAT, AddressSpace.GLOBAL)], ["n", "p"])


class TestFunction:
    def test_arg_lookup(self):
        fn = make_fn()
        assert fn.arg("n").type == I32
        with pytest.raises(KeyError):
            fn.arg("missing")

    def test_arg_count_mismatch(self):
        with pytest.raises(ValueError):
            Function("f", [I32], ["a", "b"])

    def test_blocks_and_entry(self):
        fn = make_fn()
        b1 = fn.add_block("entry")
        b2 = fn.add_block("next")
        assert fn.entry is b1
        assert fn.blocks == [b1, b2]

    def test_add_block_after(self):
        fn = make_fn()
        b1 = fn.add_block("a")
        b3 = fn.add_block("c")
        b2 = fn.add_block("b", after=b1)
        assert fn.blocks == [b1, b2, b3]

    def test_local_arrays(self):
        fn = make_fn()
        la = fn.add_local_array(ArrayType(FLOAT, 8), "lm")
        assert fn.local_array("lm") is la
        fn.remove_local_array(la)
        with pytest.raises(KeyError):
            fn.local_array("lm")

    def test_instructions_iterates_all_blocks(self):
        fn = make_fn()
        b = IRBuilder(fn.add_block())
        b.add(Constant(I32, 1), Constant(I32, 2))
        b2 = fn.add_block()
        b.position_at_end(b2)
        b.ret()
        assert len(list(fn.instructions())) == 2


class TestBasicBlock:
    def test_insert_before(self):
        fn = make_fn()
        bb = fn.add_block()
        b = IRBuilder(bb)
        first = b.add(Constant(I32, 1), Constant(I32, 1))
        third = b.add(Constant(I32, 3), Constant(I32, 3))
        b.position_before(third)
        second = b.add(Constant(I32, 2), Constant(I32, 2))
        assert bb.instructions == [first, second, third]

    def test_terminator_detection(self):
        fn = make_fn()
        bb = fn.add_block()
        assert bb.terminator is None
        IRBuilder(bb).ret()
        assert bb.terminator is not None

    def test_auto_names_unique(self):
        assert BasicBlock().name != BasicBlock().name


class TestModule:
    def test_kernel_selection(self):
        mod = Module("m")
        k = Function("k", [], [], is_kernel=True)
        h = Function("h", [], [])
        mod.add_function(k)
        mod.add_function(h)
        assert mod.kernels() == [k]
        assert mod.kernel() is k
        assert mod.kernel("k") is k
        with pytest.raises(KeyError):
            mod.kernel("h")

    def test_duplicate_function_rejected(self):
        mod = Module("m")
        mod.add_function(Function("f", [], []))
        with pytest.raises(ValueError):
            mod.add_function(Function("f", [], []))

    def test_ambiguous_kernel(self):
        mod = Module("m")
        mod.add_function(Function("a", [], [], is_kernel=True))
        mod.add_function(Function("b", [], [], is_kernel=True))
        with pytest.raises(KeyError):
            mod.kernel()


class TestBuilder:
    def test_arithmetic_helpers(self):
        fn = make_fn()
        b = IRBuilder(fn.add_block())
        one, two = Constant(I32, 1), Constant(I32, 2)
        assert b.add(one, two).opcode == Opcode.ADD
        assert b.sub(one, two).opcode == Opcode.SUB
        assert b.mul(one, two).opcode == Opcode.MUL
        assert b.sdiv(one, two).opcode == Opcode.SDIV
        f1, f2 = Constant(FLOAT, 1.0), Constant(FLOAT, 2.0)
        assert b.fadd(f1, f2).opcode == Opcode.FADD
        assert b.fmul(f1, f2).opcode == Opcode.FMUL

    def test_memory_helpers(self):
        fn = make_fn()
        b = IRBuilder(fn.add_block())
        slot = b.alloca(I32, "x")
        b.store(Constant(I32, 5), slot)
        v = b.load(slot)
        assert v.type == I32

    def test_control_flow_helpers(self):
        fn = make_fn()
        e = fn.add_block("entry")
        t = fn.add_block("t")
        b = IRBuilder(e)
        cond = b.icmp("eq", Constant(I32, 0), Constant(I32, 0))
        b.cond_br(cond, t, t)
        assert e.terminator is not None

    def test_emit_without_position_fails(self):
        b = IRBuilder()
        with pytest.raises(AssertionError):
            b.add(Constant(I32, 1), Constant(I32, 1))
