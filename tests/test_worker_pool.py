"""The process-wide persistent worker pool (DESIGN.md §17).

Worker processes must survive across fan-outs — consecutive matrices,
fuzz campaigns and sharded launches reuse the *same pids* instead of
forking a pool per call — and the pool must recycle itself when a
worker dies, grow for wider fan-outs, honour ``pool_persist=0``, and
be torn down by the session that first acquired it.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.frontend import compile_kernel
from repro.parallel import pool as worker_pool
from repro.parallel.engine import make_pool
from repro.runtime import Memory, launch
from repro.session import Session, events

_SOURCE = r"""
__kernel void copy(__global float* out, __global const float* in)
{
    out[get_global_id(0)] = in[get_global_id(0)];
}
"""


def _launch_copy(kernel, workers=2, groups=4, lsize=8):
    n = groups * lsize
    mem = Memory()
    data = np.arange(n, dtype=np.float32)
    args = {"in": mem.from_array(data, "in"), "out": mem.alloc(data.nbytes, "out")}
    launch(
        kernel, (n,), (lsize,), args, memory=mem,
        collect_trace=True, workers=workers,
    )
    return args["out"].read(np.float32, n)


def _shared_pids():
    pool = worker_pool._SHARED
    assert pool is not None, "no shared pool was created"
    pids = pool.worker_pids()
    assert pids, "shared pool has no live worker processes"
    return pool, pids


# ---------------------------------------------------------------------------
# pid stability: no per-call executor churn
# ---------------------------------------------------------------------------


def test_matrix_reuses_worker_processes():
    from repro.parallel.matrix import run_matrix
    from repro.perf.devices import CPU_DEVICES

    dev = [next(iter(CPU_DEVICES))]
    first = run_matrix(
        apps=["AMD-MM", "AMD-MT"], devices=dev, workers=2, scale="test"
    )
    pool1, pids1 = _shared_pids()
    second = run_matrix(
        apps=["AMD-MM", "AMD-MT"], devices=dev, workers=2, scale="test"
    )
    pool2, pids2 = _shared_pids()
    assert pool1 is pool2
    assert pids1 == pids2  # same worker processes, not a fresh fork
    assert first.values == second.values


def test_fuzz_campaigns_reuse_worker_processes(tmp_path):
    from repro.fuzz.runner import FuzzOptions, run_fuzz

    opts = FuzzOptions(
        seed=11, count=3, workers=2, out_dir=str(tmp_path / "repros")
    )
    run_fuzz(opts)
    pool1, pids1 = _shared_pids()
    run_fuzz(opts)
    pool2, pids2 = _shared_pids()
    assert pool1 is pool2
    assert pids1 == pids2


def test_sharded_launches_reuse_workers_and_warm_kernels():
    worker_pool.reset_stats()
    kernel = compile_kernel(_SOURCE)
    out1 = _launch_copy(kernel, workers=2)
    _, pids1 = _shared_pids()
    out2 = _launch_copy(kernel, workers=2)
    _, pids2 = _shared_pids()
    assert pids1 == pids2
    np.testing.assert_array_equal(out1, out2)

    stats = worker_pool.stats()
    assert stats["tasks"] == 4  # 2 launches x 2 shards
    hits = sum(c["kernel_cache_hits"] for c in stats["per_worker"].values())
    misses = sum(c["kernel_cache_misses"] for c in stats["per_worker"].values())
    # each worker unpickles the kernel at most once; every further task
    # on that worker finds it warm
    assert misses <= len(pids1)
    assert hits >= stats["tasks"] - len(pids1)
    assert hits >= 1


def test_generation_change_invalidates_warm_kernels():
    worker_pool.reset_stats()
    kernel = compile_kernel(_SOURCE)
    with Session(tape_batch=64).activate():
        _launch_copy(kernel, workers=2)
    with Session(tape_batch=128).activate():  # new shard config generation
        _launch_copy(kernel, workers=2)
    stats = worker_pool.stats()
    misses = sum(c["kernel_cache_misses"] for c in stats["per_worker"].values())
    # the config change forces at least one re-unpickle somewhere even
    # though kernel bytes are identical
    assert misses >= 2


# ---------------------------------------------------------------------------
# recycling
# ---------------------------------------------------------------------------


def test_pool_recycles_after_worker_death():
    kernel = compile_kernel(_SOURCE)
    _launch_copy(kernel, workers=2)
    pool1, pids1 = _shared_pids()

    os.kill(pids1[-1], signal.SIGKILL)
    deadline = time.monotonic() + 10.0
    while not pool1.broken and time.monotonic() < deadline:
        time.sleep(0.05)
    assert pool1.broken

    with events.collect() as sink:
        out = _launch_copy(kernel, workers=2)  # acquire() must recycle
    np.testing.assert_array_equal(out, np.arange(32, dtype=np.float32))
    pool2, _ = _shared_pids()
    assert pool2 is not pool1
    recycles = sink.of_kind("pool_recycle")
    assert len(recycles) == 1
    assert recycles[0].payload["reason"] == "worker died"


def test_pool_grows_for_wider_fanout():
    p2 = worker_pool.acquire(2, factory=make_pool)
    assert p2 is not None and p2.persistent
    with events.collect() as sink:
        p4 = worker_pool.acquire(4, factory=make_pool)
    assert p4 is not None and p4.n_workers == 4
    assert worker_pool._SHARED is p4
    assert sink.of_kind("pool_recycle")[0].payload["reason"] == "grow 2 -> 4"
    # a wide pool serves narrow fan-outs without another recycle
    assert worker_pool.acquire(2, factory=make_pool) is p4


def test_factory_change_recycles():
    p1 = worker_pool.acquire(2, factory=make_pool)

    def other_factory(n):
        return make_pool(n)

    p2 = worker_pool.acquire(2, factory=other_factory)
    assert p2 is not None and p2 is not p1
    assert worker_pool._SHARED is p2


# ---------------------------------------------------------------------------
# persistence switch and ownership
# ---------------------------------------------------------------------------


def test_persist_off_is_ephemeral():
    with Session(pool_persist=False).activate():
        kernel = compile_kernel(_SOURCE)
        out = _launch_copy(kernel, workers=2)
        np.testing.assert_array_equal(out, np.arange(32, dtype=np.float32))
        assert worker_pool._SHARED is None  # nothing kept warm

        pool = worker_pool.acquire(2, factory=make_pool)
        assert pool is not None and not pool.persistent
        pool.release()  # ephemeral: release is a real shutdown
        assert worker_pool._SHARED is None


def test_owning_session_close_tears_down_pool():
    kernel = compile_kernel(_SOURCE)
    with Session():  # __exit__ calls close(), unlike activate()
        _launch_copy(kernel, workers=2)
        assert worker_pool._SHARED is not None
    # Session.close() ran on exit; the owner takes the pool with it
    assert worker_pool._SHARED is None


def test_non_owner_session_close_leaves_pool_warm():
    kernel = compile_kernel(_SOURCE)
    _launch_copy(kernel, workers=2)  # default session owns the pool
    pool1, _ = _shared_pids()
    with Session().activate():
        _launch_copy(kernel, workers=2)
    assert worker_pool._SHARED is pool1  # inner session was not the owner


def test_pool_start_event_emitted_once_per_pool():
    kernel = compile_kernel(_SOURCE)
    with events.collect() as sink:
        _launch_copy(kernel, workers=2)
        _launch_copy(kernel, workers=2)
    starts = sink.of_kind("pool_start")
    assert len(starts) == 1
    assert starts[0].payload["workers"] == 2
