"""PassManager contracts: registry, idempotency, verification, bit-identity.

The ISSUE-3 invariants:

* every registered rewrite pass is idempotent — a second consecutive
  run reports 0 rewrites;
* the IR verifier holds between every stage of both pipelines for all
  11 Table III applications;
* ``PassManager().run(module)`` produces bit-for-bit the IR the
  historical ``run_default_passes`` sequence produced (and the vendor
  pipeline matches ``vendor_optimize``'s sequence).
"""

from __future__ import annotations

import pytest
from pycparser import CParser

from repro.apps.registry import TABLE_ORDER, get_app
from repro.frontend.lower import lower_translation_unit
from repro.frontend.preprocess import preprocess
from repro.ir.printer import print_function
from repro.session import DEFAULT_PIPELINE, PassManager, VENDOR_PIPELINE, collect
from repro.session.passes import PASS_REGISTRY, PIPELINES, get_pass, register_pass
from tests.conftest import MM_SOURCE, MT_SOURCE, REDUCTION_SOURCE


def lower(source, defines=None, name="t"):
    """Virgin IR: lowered, no pipeline applied yet."""
    pre = preprocess(source, defines)
    ast = CParser().parse(pre.text, filename=name)
    return lower_translation_unit(ast, pre.kernel_names, name)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


def test_registry_and_pipelines():
    assert set(PIPELINES) == {"default", "vendor"}
    assert DEFAULT_PIPELINE == (
        "promote-single-store-slots", "fold-constants", "cse", "licm", "cse",
    )
    assert VENDOR_PIPELINE == (
        "fold-constants", "normalize-gep", "dce", "cse", "licm", "cse", "dce",
    )
    for name in DEFAULT_PIPELINE + VENDOR_PIPELINE:
        assert name in PASS_REGISTRY
    for info in PASS_REGISTRY.values():
        assert info.description


def test_unknown_names_raise():
    with pytest.raises(KeyError, match="unknown pipeline"):
        PassManager(pipeline="nope")
    with pytest.raises(KeyError, match="unknown pass"):
        PassManager(names=["does-not-exist"])
    with pytest.raises(KeyError, match="unknown pass"):
        get_pass("does-not-exist")


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register_pass("cse", "again")(lambda fn: 0)


def test_names_property():
    assert PassManager().names == list(DEFAULT_PIPELINE)
    assert PassManager(pipeline="vendor").names == list(VENDOR_PIPELINE)
    assert PassManager(names=["dce", "cse"]).names == ["dce", "cse"]


# ---------------------------------------------------------------------------
# idempotency: a second consecutive run reports 0 rewrites
# ---------------------------------------------------------------------------

_REWRITE_PASSES = sorted(set(DEFAULT_PIPELINE + VENDOR_PIPELINE))


@pytest.mark.parametrize("pass_name", _REWRITE_PASSES)
@pytest.mark.parametrize("source", [MT_SOURCE, MM_SOURCE, REDUCTION_SOURCE],
                         ids=["MT", "MM", "REDUCTION"])
def test_each_pass_idempotent_on_virgin_ir(pass_name, source):
    module = lower(source)
    pm = PassManager(names=[pass_name])
    pm.run(module)  # first run may rewrite freely
    second = pm.run(module)
    assert all(r.rewrites == 0 for r in second), (
        f"{pass_name} rewrote again on its second run: "
        f"{[(r.function, r.rewrites) for r in second if r.rewrites]}"
    )


@pytest.mark.parametrize("pipeline", sorted(PIPELINES))
def test_pipelines_idempotent_as_a_whole(pipeline):
    module = lower(MM_SOURCE)
    pm = PassManager(pipeline=pipeline)
    pm.run(module)
    assert all(r.rewrites == 0 for r in pm.run(module))


def test_grover_pass_idempotent_via_registry():
    module = lower(MT_SOURCE)
    PassManager().run(module)
    pm = PassManager(names=["grover"])
    first = pm.run(module)
    assert sum(r.rewrites for r in first) > 0  # the tile got removed
    second = pm.run(module)
    assert all(r.rewrites == 0 for r in second)  # nothing local remains


# ---------------------------------------------------------------------------
# verifier checkpoints between every stage, all 11 applications
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("app_id", TABLE_ORDER)
def test_verifier_holds_between_every_stage(app_id):
    app = get_app(app_id)
    module = lower(app.source, app.defines, name=app_id)
    with collect() as sink:
        PassManager(pipeline="default", verify_between=True).run(module)
        PassManager(pipeline="vendor", verify_between=True).run(module)
    checkpoints = sink.of_kind("verify_ok")
    n_fns = sum(1 for _ in module)
    assert len(checkpoints) == n_fns * (
        len(DEFAULT_PIPELINE) + len(VENDOR_PIPELINE)
    )
    stages = {e.payload["stage"] for e in checkpoints}
    for name in DEFAULT_PIPELINE + VENDOR_PIPELINE:
        assert f"after:{name}" in stages


# ---------------------------------------------------------------------------
# bit-identity with the historical pass sequences
# ---------------------------------------------------------------------------


def _render(module):
    return "\n".join(print_function(fn) for fn in module)


@pytest.mark.parametrize("source", [MT_SOURCE, MM_SOURCE, REDUCTION_SOURCE],
                         ids=["MT", "MM", "REDUCTION"])
def test_default_pipeline_matches_historical_sequence(source):
    from repro.ir.passes import (
        common_subexpression_elimination,
        fold_constants,
        loop_invariant_code_motion,
        promote_single_store_slots,
    )

    legacy = lower(source)
    for fn in legacy:  # the pre-PassManager run_default_passes body
        promote_single_store_slots(fn)
        fold_constants(fn)
        common_subexpression_elimination(fn)
        loop_invariant_code_motion(fn)
        common_subexpression_elimination(fn)

    managed = lower(source)
    PassManager().run(managed)
    assert _render(managed) == _render(legacy)


@pytest.mark.parametrize("source", [MT_SOURCE, MM_SOURCE], ids=["MT", "MM"])
def test_vendor_pipeline_matches_historical_sequence(source):
    from repro.core.dce import eliminate_dead_code
    from repro.core.normalize import normalize_gep_indices
    from repro.ir.passes import (
        common_subexpression_elimination,
        fold_constants,
        loop_invariant_code_motion,
    )

    legacy = lower(source)
    PassManager().run(legacy)
    for fn in legacy:  # the pre-PassManager vendor_optimize body
        fold_constants(fn)
        normalize_gep_indices(fn)
        eliminate_dead_code(fn)
        common_subexpression_elimination(fn)
        loop_invariant_code_motion(fn)
        common_subexpression_elimination(fn)
        eliminate_dead_code(fn)

    managed = lower(source)
    PassManager().run(managed)
    for fn in managed:
        from repro.core.optimize import vendor_optimize

        vendor_optimize(fn)
    assert _render(managed) == _render(legacy)


def test_run_default_passes_is_the_pass_manager():
    """The legacy entry point and the PassManager agree exactly."""
    from repro.ir.passes import run_default_passes

    a, b = lower(MM_SOURCE), lower(MM_SOURCE)
    run_default_passes(a)
    PassManager().run(b)
    assert _render(a) == _render(b)


def test_vendor_optimize_stats_still_reported():
    from repro.core.optimize import vendor_optimize

    module = lower(MM_SOURCE)
    PassManager().run(module)
    stats = vendor_optimize(module.kernel())
    assert set(stats) == {
        "folded", "normalized", "dce", "cse", "licm", "cse2", "dce2"
    }
    assert all(isinstance(v, int) and v >= 0 for v in stats.values())


# ---------------------------------------------------------------------------
# the ``repro passes`` subcommand
# ---------------------------------------------------------------------------


def test_cli_passes_lists_registry(capsys):
    from repro.cli import main

    assert main(["passes"]) == 0
    out = capsys.readouterr().out
    for name in PASS_REGISTRY:
        assert name in out
    assert " -> ".join(DEFAULT_PIPELINE) in out


def test_cli_passes_runs_a_pipeline(tmp_path, capsys):
    from repro.cli import main
    from repro.session import validate_jsonl

    src = tmp_path / "k.cl"
    src.write_text(MT_SOURCE)
    trace = tmp_path / "ev.jsonl"
    assert main([
        "passes", "--run", str(src), "--trace-out", str(trace)
    ]) == 0
    out = capsys.readouterr().out
    assert "promote-single-store-slots" in out
    assert "rewrites" in out
    n = validate_jsonl(str(trace))
    # one pass_applied + one verify_ok per stage
    assert n == 2 * len(DEFAULT_PIPELINE)


def test_cli_passes_rejects_bad_source(tmp_path, capsys):
    from repro.cli import main

    src = tmp_path / "bad.cl"
    src.write_text("__kernel void k( {")
    assert main(["passes", "--run", str(src)]) == 1
    assert "error:" in capsys.readouterr().err
