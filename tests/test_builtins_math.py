"""Coverage for the OpenCL math builtin surface."""

import numpy as np
import pytest

from tests.conftest import run_scalar_kernel


def run_math(expr, n=16, params="", inputs=None):
    src = f"""
__kernel void m(__global float* out{(', ' + params) if params else ''})
{{
    int gid = get_global_id(0);
    float x = (float)(gid + 1) * 0.37f;
    out[gid] = {expr};
}}
"""
    _, outs = run_scalar_kernel(src, inputs or {}, (n,), (n,), {"out": (np.float32, (n,))})
    x = ((np.arange(n) + 1) * np.float32(0.37)).astype(np.float32)
    return outs["out"], x


@pytest.mark.parametrize(
    "expr,ref",
    [
        ("sqrt(x)", lambda x: np.sqrt(x)),
        ("native_sqrt(x)", lambda x: np.sqrt(x)),
        ("rsqrt(x)", lambda x: 1 / np.sqrt(x)),
        ("exp(x)", lambda x: np.exp(x)),
        ("native_exp(x)", lambda x: np.exp(x)),
        ("log(x)", lambda x: np.log(x)),
        ("log2(x)", lambda x: np.log2(x)),
        ("exp2(x)", lambda x: np.exp2(x)),
        ("sin(x)", lambda x: np.sin(x)),
        ("cos(x)", lambda x: np.cos(x)),
        ("tan(x)", lambda x: np.tan(x)),
        ("floor(x)", lambda x: np.floor(x)),
        ("ceil(x)", lambda x: np.ceil(x)),
        ("trunc(x)", lambda x: np.trunc(x)),
        ("fabs(x - 3.0f)", lambda x: np.abs(x - 3)),
        ("sign(x - 3.0f)", lambda x: np.sign(x - 3)),
    ],
)
def test_unary_math(expr, ref):
    got, x = run_math(expr)
    np.testing.assert_allclose(got, ref(x).astype(np.float32), rtol=2e-5, atol=1e-6)


@pytest.mark.parametrize(
    "expr,ref",
    [
        ("fmin(x, 2.0f)", lambda x: np.minimum(x, 2)),
        ("fmax(x, 2.0f)", lambda x: np.maximum(x, 2)),
        ("pow(x, 2.0f)", lambda x: x**2),
        ("fmod(x, 1.5f)", lambda x: np.fmod(x, 1.5)),
        ("atan2(x, 2.0f)", lambda x: np.arctan2(x, 2)),
        ("hypot(x, 3.0f)", lambda x: np.hypot(x, 3)),
    ],
)
def test_binary_math(expr, ref):
    got, x = run_math(expr)
    np.testing.assert_allclose(got, ref(x).astype(np.float32), rtol=2e-5, atol=1e-6)


@pytest.mark.parametrize(
    "expr,ref",
    [
        ("fma(x, 2.0f, 1.0f)", lambda x: x * 2 + 1),
        ("mad(x, 2.0f, 1.0f)", lambda x: x * 2 + 1),
        ("clamp(x, 1.0f, 3.0f)", lambda x: np.clip(x, 1, 3)),
        ("mix(0.0f, x, 0.25f)", lambda x: 0.25 * x),
    ],
)
def test_ternary_math(expr, ref):
    got, x = run_math(expr)
    np.testing.assert_allclose(got, ref(x).astype(np.float32), rtol=2e-5, atol=1e-6)


class TestIntBuiltins:
    def test_min_max_abs(self):
        src = """
__kernel void m(__global int* out)
{
    int gid = get_global_id(0);
    out[gid] = min(gid, 5) + max(gid, 10) + abs(gid - 8);
}
"""
        _, outs = run_scalar_kernel(src, {}, (16,), (16,), {"out": (np.int32, (16,))})
        g = np.arange(16)
        np.testing.assert_array_equal(
            outs["out"], np.minimum(g, 5) + np.maximum(g, 10) + np.abs(g - 8)
        )

    def test_mul24_mad24(self):
        src = """
__kernel void m(__global int* out)
{
    int gid = get_global_id(0);
    out[gid] = mad24(gid, 3, mul24(gid, 2));
}
"""
        _, outs = run_scalar_kernel(src, {}, (8,), (8,), {"out": (np.int32, (8,))})
        g = np.arange(8)
        np.testing.assert_array_equal(outs["out"], g * 3 + g * 2)


class TestWorkItemQueries:
    def test_all_queries(self):
        src = """
__kernel void q(__global int* out)
{
    int gid = get_global_id(0);
    out[gid] = (int)(get_global_size(0)*1000000
                     + get_num_groups(0)*10000
                     + get_local_size(0)*100
                     + get_work_dim()*10
                     + get_global_offset(0));
}
"""
        _, outs = run_scalar_kernel(src, {}, (32,), (8,), {"out": (np.int32, (32,))})
        expected = 32 * 1000000 + 4 * 10000 + 8 * 100 + 1 * 10 + 0
        np.testing.assert_array_equal(outs["out"], np.full(32, expected))

    def test_out_of_range_dim(self):
        src = """
__kernel void q(__global int* out)
{
    out[get_global_id(0)] = (int)(get_global_id(2)
                                  + get_local_size(2)
                                  + get_num_groups(1));
}
"""
        _, outs = run_scalar_kernel(src, {}, (4,), (4,), {"out": (np.int32, (4,))})
        # gid(2)=0, lsize(2)=1, groups(1)=1 for a 1-D launch
        np.testing.assert_array_equal(outs["out"], np.full(4, 2))
