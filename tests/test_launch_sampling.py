"""``launch(sample_groups=...)`` edge cases and extrapolation.

The performance models run only a sampled subset of work-groups and
extrapolate via ``KernelTrace.scale``; these tests pin down the exact
sampling contract: the realised count is ``min(sample_groups,
total_groups)`` (the rounded linspace picks are strictly increasing, so
deduplication never shrinks them), ``sample_groups`` must be >= 1, and
extrapolated quantities stay consistent with a full run on a
homogeneous kernel.
"""

import numpy as np
import pytest

from repro.frontend import compile_kernel
from repro.runtime import Memory, launch
from repro.runtime.errors import RuntimeLaunchError

from tests.conftest import MT_SOURCE


def _mt_launch(n=64, sample_groups=None, collect_trace=True):
    kernel = compile_kernel(MT_SOURCE)
    mem = Memory()
    a = np.arange(n * n, dtype=np.float32).reshape(n, n)
    inb, outb = mem.from_array(a), mem.alloc(a.nbytes)
    res = launch(
        kernel,
        (n, n),
        (16, 16),
        {"in": inb, "out": outb, "W": n, "H": n},
        collect_trace=collect_trace,
        sample_groups=sample_groups,
    )
    return res, outb, a


def test_sample_one_group():
    res, _, _ = _mt_launch(sample_groups=1)
    assert res.groups_executed == 1
    assert res.trace.sampled_groups == 1
    assert res.trace.total_groups == 16
    assert res.trace.scale == 16.0


def test_sample_more_than_total_runs_all():
    res, outb, a = _mt_launch(sample_groups=999)
    assert res.groups_executed == 16
    assert res.trace.sampled_groups == 16
    assert res.trace.scale == 1.0
    # every group ran, so the output is the complete transpose
    got = outb.read(np.float32, a.size).reshape(a.shape)
    np.testing.assert_array_equal(got, a.T)


@pytest.mark.parametrize("bad", [0, -1, -7])
def test_sample_groups_must_be_positive(bad):
    with pytest.raises(RuntimeLaunchError, match="sample_groups"):
        _mt_launch(sample_groups=bad)


@pytest.mark.parametrize("requested", [1, 2, 3, 5, 7, 11, 15, 16, 17])
def test_realised_count_is_min_of_requested_and_total(requested):
    res, _, _ = _mt_launch(sample_groups=requested)
    assert res.groups_executed == min(requested, 16)
    assert res.trace.sampled_groups == min(requested, 16)


def test_extrapolation_consistency():
    """On a homogeneous kernel, scaled sampled counts equal full counts."""
    full, _, _ = _mt_launch(sample_groups=None)
    sampled, _, _ = _mt_launch(sample_groups=4)
    assert sampled.trace.scale == pytest.approx(4.0)
    assert sampled.trace.total_inst_count() == pytest.approx(
        full.trace.total_inst_count()
    )
    full_accesses = sum(g.accesses() for g in full.trace.groups)
    sampled_accesses = sampled.trace.scale * sum(
        g.accesses() for g in sampled.trace.groups
    )
    assert sampled_accesses == pytest.approx(full_accesses)


def test_arena_reuse_keeps_group_isolation():
    """Reused local/private arenas must behave like fresh allocations:
    a full unsampled run still produces the exact transpose (any stale
    local-memory state would corrupt tiles of later groups)."""
    _, outb, a = _mt_launch(sample_groups=None)
    got = outb.read(np.float32, a.size).reshape(a.shape)
    np.testing.assert_array_equal(got, a.T)


def test_fingerprints_dedupe_homogeneous_groups():
    """All 16 transpose groups share one relative access pattern."""
    res, _, _ = _mt_launch(sample_groups=None)
    prints = {g.fingerprint() for g in res.trace.groups}
    assert len(prints) == 1
    # and the digest is cached, not recomputed
    g = res.trace.groups[0]
    assert g.fingerprint() is g.fingerprint()
