"""Tests for the textual IR parser (printer round-trips)."""

import numpy as np
import pytest

from repro.frontend import compile_kernel
from repro.ir.parser import IRParseError, parse_function, parse_module, parse_type
from repro.ir.printer import print_function, print_module
from repro.ir.types import (
    AddressSpace,
    ArrayType,
    BOOL,
    DOUBLE,
    FLOAT,
    I32,
    I64,
    PointerType,
    U32,
    VectorType,
)
from repro.ir.verifier import verify_function

from tests.conftest import MM_SOURCE, MT_SOURCE, REDUCTION_SOURCE, execute_kernel


class TestParseType:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("i32", I32),
            ("u32", U32),
            ("float", FLOAT),
            ("double", DOUBLE),
            ("i1", BOOL),
            ("i64", I64),
            ("[16 x float]", ArrayType(FLOAT, 16)),
            ("[4 x [8 x i32]]", ArrayType(ArrayType(I32, 8), 4)),
            ("<4 x float>", VectorType(FLOAT, 4)),
            ("float addrspace(1)*", PointerType(FLOAT, AddressSpace.GLOBAL)),
            ("float addrspace(3)*", PointerType(FLOAT, AddressSpace.LOCAL)),
            (
                "[16 x [16 x float]] addrspace(3)*",
                PointerType(ArrayType(ArrayType(FLOAT, 16), 16), AddressSpace.LOCAL),
            ),
            (
                "<4 x float> addrspace(1)*",
                PointerType(VectorType(FLOAT, 4), AddressSpace.GLOBAL),
            ),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_type(text) == expected

    @pytest.mark.parametrize("text", ["i13", "quux", "[x float]", "<3.5 x i8>"])
    def test_invalid(self, text):
        with pytest.raises(IRParseError):
            parse_type(text)


def roundtrip(source_or_fn):
    fn = (
        source_or_fn
        if not isinstance(source_or_fn, str)
        else compile_kernel(source_or_fn)
    )
    text = print_function(fn)
    fn2 = parse_function(text)
    verify_function(fn2)
    return fn, fn2


class TestRoundTrip:
    @pytest.mark.parametrize("src", [MT_SOURCE, MM_SOURCE, REDUCTION_SOURCE])
    def test_structure_preserved(self, src):
        fn, fn2 = roundtrip(src)
        assert len(fn.blocks) == len(fn2.blocks)
        assert sum(len(b.instructions) for b in fn.blocks) == sum(
            len(b.instructions) for b in fn2.blocks
        )
        assert [a.type for a in fn.args] == [a.type for a in fn2.args]
        assert fn.is_kernel == fn2.is_kernel
        assert len(fn.local_arrays) == len(fn2.local_arrays)

    def test_parsed_kernel_executes_identically(self):
        fn, fn2 = roundtrip(MT_SOURCE)
        n = 32
        rng = np.random.default_rng(5)
        a = rng.random((n, n), dtype=np.float32)
        _, o1 = execute_kernel(
            fn, {"in": a, "W": n, "H": n}, (n, n), (16, 16),
            {"out": (np.float32, (n, n))},
        )
        _, o2 = execute_kernel(
            fn2, {"in": a, "W": n, "H": n}, (n, n), (16, 16),
            {"out": (np.float32, (n, n))},
        )
        np.testing.assert_array_equal(o1["out"], o2["out"])
        np.testing.assert_array_equal(o1["out"], a.T)

    def test_grover_transformed_kernel_roundtrips(self):
        from repro.core import disable_local_memory

        fn = compile_kernel(MT_SOURCE)
        disable_local_memory(fn)
        _, fn2 = roundtrip(fn)
        assert not fn2.local_arrays

    def test_vector_kernel_roundtrips(self):
        src = """
__kernel void v(__global float* out, __global const float* in)
{
    float4 a = vload4(get_global_id(0), in);
    float4 b = a * 2.0f;
    b.y = 7.0f;
    vstore4(b, get_global_id(0), out);
}
"""
        fn, fn2 = roundtrip(src)
        data = np.arange(32, dtype=np.float32)
        _, o2 = execute_kernel(
            fn2, {"in": data}, (8,), (8,), {"out": (np.float32, (32,))}
        )
        expected = (data * 2).reshape(8, 4)
        expected[:, 1] = 7.0
        np.testing.assert_allclose(o2["out"].reshape(8, 4), expected)

    def test_module_roundtrip(self):
        from repro.frontend import compile_source

        src = """
__kernel void a(__global int* out) { out[get_global_id(0)] = 1; }
__kernel void b(__global int* out) { out[get_global_id(0)] = 2; }
"""
        mod = compile_source(src)
        mod2 = parse_module(print_module(mod))
        assert set(mod2.functions) == {"a", "b"}
        assert all(f.is_kernel for f in mod2)


class TestDiagnostics:
    def test_undefined_value(self):
        text = "kernel void @k() {\nentry:\n  %a = add i32 %nope, 1\n  ret void\n}"
        with pytest.raises(IRParseError, match="undefined value"):
            parse_function(text)

    def test_unknown_instruction(self):
        text = "kernel void @k() {\nentry:\n  %a = frobnicate i32 1, 2\n  ret void\n}"
        with pytest.raises(IRParseError, match="unknown instruction"):
            parse_function(text)

    def test_branch_to_unknown_label(self):
        text = "kernel void @k() {\nentry:\n  br label %missing\n}"
        with pytest.raises(IRParseError, match="unknown label"):
            parse_function(text)

    def test_bad_header(self):
        with pytest.raises(IRParseError, match="header"):
            parse_function("void k() {\n}")

    def test_redefinition(self):
        text = (
            "kernel void @k() {\nentry:\n  %a = add i32 1, 2\n"
            "  %a = add i32 3, 4\n  ret void\n}"
        )
        with pytest.raises(IRParseError, match="redefinition"):
            parse_function(text)

    def test_empty_input(self):
        with pytest.raises(IRParseError, match="empty"):
            parse_function("")


class TestHandWrittenIR:
    def test_write_ir_directly(self):
        """The parser lets tests author IR without the frontend."""
        text = """
kernel void @axpy(float addrspace(1)* %y, float addrspace(1)* %x, float %a) {
entry:
  %gid = call i64 @get_global_id(0)
  %px = getelementptr float addrspace(1)* %x, [%gid]
  %vx = load float, float addrspace(1)* %px
  %py = getelementptr float addrspace(1)* %y, [%gid]
  %vy = load float, float addrspace(1)* %py
  %ax = fmul float %a, %vx
  %s = fadd float %ax, %vy
  store float %s, float addrspace(1)* %py
  ret void
}
"""
        fn = parse_function(text)
        verify_function(fn)
        x = np.arange(16, dtype=np.float32)
        y = np.ones(16, dtype=np.float32)
        _, outs = execute_kernel(
            fn, {"x": x, "y": y, "a": 2.0}, (16,), (16,),
            {"y": (np.float32, (16,))},
        )
        np.testing.assert_allclose(outs["y"], 2.0 * x + 1.0)
