"""Datatype coverage: doubles, small integers, unsigned, mixed widths."""

import numpy as np
import pytest

from tests.conftest import run_scalar_kernel


class TestDoubles:
    def test_double_arithmetic(self):
        src = """
__kernel void d(__global double* out, __global const double* in)
{
    int gid = get_global_id(0);
    double x = in[gid];
    out[gid] = x * 3.0 + 0.5;
}
"""
        data = np.linspace(0, 1, 16).astype(np.float64)
        _, outs = run_scalar_kernel(
            src, {"in": data}, (16,), (16,), {"out": (np.float64, (16,))}
        )
        np.testing.assert_allclose(outs["out"], data * 3 + 0.5, rtol=1e-12)

    def test_double_precision_beyond_float(self):
        src = """
__kernel void d(__global double* out)
{
    int gid = get_global_id(0);
    double tiny = 1.0e-12;
    out[gid] = 1.0 + tiny * (double)gid;
}
"""
        _, outs = run_scalar_kernel(src, {}, (8,), (8,), {"out": (np.float64, (8,))})
        assert outs["out"][4] != outs["out"][0]  # would collapse in float32

    def test_float_double_conversion(self):
        src = """
__kernel void d(__global double* out, __global const float* in)
{
    int gid = get_global_id(0);
    out[gid] = (double)in[gid] + 1.0;
}
"""
        data = np.arange(8, dtype=np.float32)
        _, outs = run_scalar_kernel(
            src, {"in": data}, (8,), (8,), {"out": (np.float64, (8,))}
        )
        np.testing.assert_allclose(outs["out"], data.astype(np.float64) + 1)

    def test_grover_on_double_kernel(self):
        from repro.core import disable_local_memory
        from repro.frontend import compile_kernel
        from tests.conftest import execute_kernel

        src = """
__kernel void d(__global double* out, __global const double* in)
{
    __local double lm[16];
    int lx = get_local_id(0);
    lm[lx] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[15 - lx];
}
"""
        fn = compile_kernel(src)
        report = disable_local_memory(fn)
        assert report.fully_disabled
        data = np.arange(32, dtype=np.float64)
        _, outs = execute_kernel(
            fn, {"in": data}, (32,), (16,), {"out": (np.float64, (32,))}
        )
        expected = data.reshape(2, 16)[:, ::-1].ravel()
        np.testing.assert_array_equal(outs["out"], expected)


class TestSmallIntegers:
    def test_uchar_roundtrip(self):
        src = """
__kernel void c(__global uchar* out, __global const uchar* in)
{
    int gid = get_global_id(0);
    uchar v = in[gid];
    out[gid] = v + 10;
}
"""
        data = np.arange(250, 250 + 16, dtype=np.uint8)  # wraps past 255
        _, outs = run_scalar_kernel(
            src, {"in": data}, (16,), (16,), {"out": (np.uint8, (16,))}
        )
        np.testing.assert_array_equal(outs["out"], (data + 10))

    def test_short_promotion(self):
        src = """
__kernel void s(__global int* out, __global const short* in)
{
    int gid = get_global_id(0);
    short a = in[gid];
    out[gid] = a * 1000;   /* promoted to int: no i16 overflow */
}
"""
        data = np.arange(-8, 8, dtype=np.int16) * 100
        _, outs = run_scalar_kernel(
            src, {"in": data}, (16,), (16,), {"out": (np.int32, (16,))}
        )
        np.testing.assert_array_equal(outs["out"], data.astype(np.int32) * 1000)

    def test_unsigned_wraparound(self):
        src = """
__kernel void u(__global uint* out)
{
    uint gid = (uint)get_global_id(0);
    out[gid] = gid - 5u;
}
"""
        _, outs = run_scalar_kernel(src, {}, (8,), (8,), {"out": (np.uint32, (8,))})
        expected = (np.arange(8, dtype=np.uint32) - np.uint32(5))
        np.testing.assert_array_equal(outs["out"], expected)

    def test_long_arithmetic(self):
        src = """
__kernel void l(__global long* out)
{
    long gid = (long)get_global_id(0);
    out[gid] = gid * 10000000000;
}
"""
        _, outs = run_scalar_kernel(src, {}, (8,), (8,), {"out": (np.int64, (8,))})
        np.testing.assert_array_equal(
            outs["out"], np.arange(8, dtype=np.int64) * 10**10
        )


class TestMixedWidthIndexing:
    def test_size_t_index(self):
        src = """
__kernel void t(__global float* out, __global const float* in)
{
    size_t gid = get_global_id(0);
    out[gid] = in[gid];
}
"""
        data = np.arange(16, dtype=np.float32)
        _, outs = run_scalar_kernel(
            src, {"in": data}, (16,), (16,), {"out": (np.float32, (16,))}
        )
        np.testing.assert_array_equal(outs["out"], data)

    def test_uint_times_int_index(self):
        src = """
__kernel void t(__global float* out, __global const float* in, uint stride)
{
    int gid = get_global_id(0);
    out[gid] = in[gid * stride];
}
"""
        data = np.arange(64, dtype=np.float32)
        _, outs = run_scalar_kernel(
            src, {"in": data, "stride": 4}, (16,), (16,),
            {"out": (np.float32, (16,))},
        )
        np.testing.assert_array_equal(outs["out"], data[::4])
