"""Unit tests for the IR verifier and the textual printer."""

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.function import Function, Module
from repro.ir.instructions import BinOp, Opcode, Ret
from repro.ir.printer import print_function, print_module
from repro.ir.types import AddressSpace, ArrayType, FLOAT, I32, PointerType
from repro.ir.values import Constant
from repro.ir.verifier import VerificationError, verify_function, verify_module


def trivial_fn(name="f"):
    fn = Function(name, [I32], ["n"], is_kernel=True)
    IRBuilder(fn.add_block("entry")).ret()
    return fn


class TestVerifier:
    def test_valid_function_passes(self):
        verify_function(trivial_fn())

    def test_empty_function_rejected(self):
        with pytest.raises(VerificationError, match="no blocks"):
            verify_function(Function("f", [], []))

    def test_missing_terminator(self):
        fn = Function("f", [], [])
        bb = fn.add_block()
        bb.append(BinOp(Opcode.ADD, Constant(I32, 1), Constant(I32, 1)))
        with pytest.raises(VerificationError, match="terminator"):
            verify_function(fn)

    def test_terminator_in_middle(self):
        fn = Function("f", [], [])
        bb = fn.add_block()
        bb.append(Ret())
        bb.append(Ret())
        with pytest.raises(VerificationError, match="middle"):
            verify_function(fn)

    def test_foreign_value_rejected(self):
        fn1 = trivial_fn("a")
        fn2 = Function("b", [], [])
        bb2 = fn2.add_block()
        b2 = IRBuilder(bb2)
        b2.add(fn1.arg("n"), Constant(I32, 1))  # uses a's argument!
        b2.ret()
        with pytest.raises(VerificationError, match="another function"):
            verify_function(fn2)

    def test_dominance_violation(self):
        fn = Function("f", [], [])
        entry = fn.add_block("entry")
        late = fn.add_block("late")
        IRBuilder(entry).br(late)
        # build an instruction in `late`, then use it in `entry`
        bl = IRBuilder(late)
        val = bl.add(Constant(I32, 1), Constant(I32, 1))
        bl.ret()
        be = IRBuilder(entry)
        be.position_before(entry.terminator)
        be.add(val, Constant(I32, 1))
        with pytest.raises(VerificationError, match="dominate"):
            verify_function(fn)

    def test_branch_to_foreign_block(self):
        fn = Function("f", [], [])
        bb = fn.add_block()
        other_fn = Function("g", [], [])
        foreign = other_fn.add_block()
        IRBuilder(bb).br(foreign)
        with pytest.raises(VerificationError, match="foreign"):
            verify_function(fn)

    def test_verify_module(self):
        mod = Module("m")
        mod.add_function(trivial_fn())
        verify_module(mod)


class TestPrinter:
    def test_prints_signature(self):
        text = print_function(trivial_fn())
        assert "kernel void @f(i32 %n)" in text

    def test_prints_local_arrays(self):
        fn = trivial_fn()
        fn.add_local_array(ArrayType(FLOAT, 16), "lm")
        text = print_function(fn)
        assert "%lm = local [16 x float]" in text
        assert "64 bytes" in text

    def test_prints_instructions(self):
        fn = Function("g", [PointerType(FLOAT, AddressSpace.GLOBAL)], ["p"])
        b = IRBuilder(fn.add_block("entry"))
        gep = b.gep(fn.arg("p"), [Constant(I32, 2)])
        v = b.load(gep, "v")
        b.store(v, gep)
        b.ret()
        text = print_function(fn)
        assert "getelementptr" in text
        assert "load float" in text
        assert "store float" in text
        assert "ret void" in text

    def test_print_module_contains_all_functions(self):
        mod = Module("m")
        mod.add_function(trivial_fn("a"))
        mod.add_function(trivial_fn("b"))
        text = print_module(mod)
        assert "@a(" in text and "@b(" in text

    def test_mt_kernel_roundtrip_strings(self):
        from tests.conftest import MT_SOURCE
        from repro.frontend import compile_kernel

        text = print_function(compile_kernel(MT_SOURCE))
        assert "@barrier" in text
        assert "addrspace(3)" in text  # local memory present
        assert "@get_local_id" in text
