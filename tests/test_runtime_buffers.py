"""Unit tests for device buffers and the encoded-pointer scheme."""

import numpy as np
import pytest

from repro.runtime.buffers import Buffer, Memory, OFFSET_BITS
from repro.runtime.errors import MemoryFault


class TestBuffer:
    def test_write_read_roundtrip(self):
        mem = Memory()
        buf = mem.alloc(64, "b")
        data = np.arange(16, dtype=np.float32)
        buf.write(data)
        np.testing.assert_array_equal(buf.read(np.float32, 16), data)

    def test_write_at_offset(self):
        mem = Memory()
        buf = mem.alloc(64)
        buf.write(np.array([7], dtype=np.int32), byte_offset=8)
        assert buf.read(np.int32, 1, byte_offset=8)[0] == 7

    def test_overflow_write_rejected(self):
        mem = Memory()
        buf = mem.alloc(8)
        with pytest.raises(MemoryFault):
            buf.write(np.zeros(4, dtype=np.float32))

    def test_from_array(self):
        mem = Memory()
        a = np.random.default_rng(0).random((4, 4)).astype(np.float64)
        buf = mem.from_array(a)
        np.testing.assert_array_equal(buf.read(np.float64, 16).reshape(4, 4), a)

    def test_views_cached_and_consistent(self):
        mem = Memory()
        buf = mem.alloc(32)
        v1 = buf.view(np.float32)
        v2 = buf.view(np.float32)
        assert v1 is v2
        v1[0] = 2.5
        assert buf.read(np.float32, 1)[0] == 2.5

    def test_read_whole_buffer_default(self):
        mem = Memory()
        buf = mem.alloc(16)
        assert len(buf.read(np.int32)) == 4


class TestMemoryRegistry:
    def test_unique_ids_and_base_addrs(self):
        mem = Memory()
        b1 = mem.alloc(8)
        b2 = mem.alloc(8)
        assert b1.id != b2.id
        assert b1.base_addr != b2.base_addr
        assert b1.base_addr == b1.id << OFFSET_BITS

    def test_decode(self):
        mem = Memory()
        b = mem.alloc(8)
        assert mem.decode(b.base_addr + 4) is b

    def test_decode_dangling(self):
        mem = Memory()
        b = mem.alloc(8)
        mem.free(b)
        with pytest.raises(MemoryFault):
            mem.decode(b.base_addr)

    def test_split_uniform(self):
        mem = Memory()
        b = mem.alloc(64)
        addrs = b.base_addr + np.array([0, 4, 8], dtype=np.int64)
        buf_id, offs = Memory.split(addrs)
        assert buf_id == b.id
        np.testing.assert_array_equal(offs, [0, 4, 8])

    def test_split_mixed_buffers_rejected(self):
        mem = Memory()
        b1, b2 = mem.alloc(8), mem.alloc(8)
        addrs = np.array([b1.base_addr, b2.base_addr], dtype=np.int64)
        with pytest.raises(MemoryFault):
            Memory.split(addrs)

    def test_separate_memories_independent(self):
        m1, m2 = Memory(), Memory()
        b1 = m1.alloc(8)
        b2 = m2.alloc(8)
        assert b1.id == b2.id  # ids are per-registry
