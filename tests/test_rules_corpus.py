"""Corpus × rewrite rules: the four-way differential oracle per rule.

Every promoted corpus kernel is replayed through each new rewrite rule;
after any legal application the transformed kernel must be judged
equivalent four ways — the reference, tape and codegen backends must
produce bit-identical traces and outputs for it, and its outputs must be
byte-identical to the *untransformed* kernel's.  The new rules are
self-gating (each proves its own legality before rewriting), so no case
is excluded: where the gate refuses, the rule is a no-op and the check
degenerates to the backends' standing bit-identity contract.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.fuzz import load_manifest
from repro.fuzz.oracle import input_data
from repro.parallel.diff import assert_traces_equal
from repro.rules import RuleContext, get_rule
from repro.runtime import Memory
from repro.session import Session

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
MANIFEST = load_manifest(CORPUS_DIR)

#: the rules added by the rewrite-rule framework (grover's behaviour on
#: the corpus is already pinned by the oracle replay in test_corpus.py)
NEW_RULES = ("pad-local-arrays", "eliminate-barriers", "hoist-global-loads")

BACKENDS = ("reference", "tape", "codegen")


def _launch(kernel, entry, backend: str):
    """One full-grid traced launch; returns (trace, output bytes)."""
    s = Session(env={}, exec_backend=backend, workers=1, tape_batch=256)
    mem = Memory()
    total = int(np.prod(entry["global_size"]))
    out = mem.alloc(total * 4, "out")
    inb = mem.from_array(input_data(int(entry["in_elems"])), "in")
    res = s.launch(
        kernel,
        tuple(entry["global_size"]),
        tuple(entry["local_size"]),
        {"out": out, "in": inb, "P": int(entry["p_value"])},
        memory=mem,
        collect_trace=True,
    )
    return res.trace, out.read(np.float32, total).copy()


@pytest.mark.parametrize("rule_name", NEW_RULES)
def test_corpus_replays_through_rule(rule_name):
    rule = get_rule(rule_name)
    applied = 0
    for entry in MANIFEST:
        if str(entry["expected"]["exec"]) != "ok":
            continue  # kernels that fault do so identically either way
        path = os.path.join(CORPUS_DIR, str(entry["file"]))
        with open(path) as fh:
            source = fh.read()
        name = str(entry["kernel"])
        session = Session(env={}, workers=1)
        baseline = session.compile_kernel(source, name)
        transformed = session.compile_kernel(source, name)
        ctx = RuleContext(local_size=tuple(entry["local_size"]))
        rewrites = rule.apply(transformed, ctx)
        case = f"{entry['file']}×{rule_name} (rewrites={rewrites})"

        _, out_base = _launch(baseline, entry, "reference")
        ref_trace, out_ref = _launch(transformed, entry, "reference")
        for backend in BACKENDS[1:]:
            trace, out = _launch(transformed, entry, backend)
            assert_traces_equal(ref_trace, trace, f"{case} [{backend}]")
            np.testing.assert_array_equal(
                out_ref.view(np.uint8), out.view(np.uint8),
                err_msg=f"{case} [{backend}] outputs",
            )
        # the fourth way: the rule must not have changed computed values
        np.testing.assert_array_equal(
            out_base.view(np.uint8), out_ref.view(np.uint8),
            err_msg=f"{case} vs untransformed",
        )
        applied += int(rewrites > 0)
    # the sweep must exercise the rule somewhere, or it proves nothing
    if rule_name == "eliminate-barriers":
        assert applied > 0
