"""Interpreter tests: SIMT execution, divergence, barriers, tracing."""

import numpy as np
import pytest

from repro.frontend import compile_kernel
from repro.ir.types import AddressSpace
from repro.runtime import BarrierDivergenceError, Memory, launch
from repro.runtime.errors import RuntimeLaunchError

from tests.conftest import MT_SOURCE, run_scalar_kernel


class TestBarriers:
    def test_uniform_barrier_ok(self):
        src = """
__kernel void k(__global int* out) {
    __local int lm[16];
    int li = get_local_id(0);
    lm[li] = li;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[15 - li];
}
"""
        _, outs = run_scalar_kernel(src, {}, (16,), (16,), {"out": (np.int32, (16,))})
        np.testing.assert_array_equal(outs["out"], np.arange(15, -1, -1))

    def test_divergent_barrier_detected(self):
        src = """
__kernel void k(__global int* out) {
    __local int lm[16];
    int li = get_local_id(0);
    lm[li] = li;
    if (li < 8) {
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    out[get_global_id(0)] = lm[li];
}
"""
        with pytest.raises(BarrierDivergenceError):
            run_scalar_kernel(src, {}, (16,), (16,), {"out": (np.int32, (16,))})

    def test_barrier_in_uniform_loop(self):
        src = """
__kernel void k(__global int* out, int n) {
    __local int lm[16];
    int li = get_local_id(0);
    int acc = 0;
    for (int t = 0; t < n; ++t) {
        lm[li] = li + t;
        barrier(CLK_LOCAL_MEM_FENCE);
        acc += lm[(li + 1) % 16];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    out[get_global_id(0)] = acc;
}
"""
        _, outs = run_scalar_kernel(
            src, {"n": 3}, (16,), (16,), {"out": (np.int32, (16,))}
        )
        expected = np.array([sum((g + 1) % 16 + t for t in range(3)) for g in range(16)])
        np.testing.assert_array_equal(outs["out"], expected)


class TestLocalMemorySemantics:
    def test_conditional_store_before_uniform_barrier(self):
        src = """
__kernel void k(__global int* out) {
    __local int lm[8];
    int li = get_local_id(0);
    if (li == 0) lm[0] = (int)get_group_id(0) + 100;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[0];
}
"""
        _, outs = run_scalar_kernel(src, {}, (16,), (8,), {"out": (np.int32, (16,))})
        expected = np.array([g // 8 + 100 for g in range(16)])
        np.testing.assert_array_equal(outs["out"], expected)

    def test_local_values_per_group(self):
        src = """
__kernel void k(__global int* out) {
    __local int lm[8];
    int li = get_local_id(0);
    lm[li] = (int)get_group_id(0) * 10 + li;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[7 - li];
}
"""
        _, outs = run_scalar_kernel(src, {}, (32,), (8,), {"out": (np.int32, (32,))})
        expected = np.array([(g // 8) * 10 + (7 - g % 8) for g in range(32)])
        np.testing.assert_array_equal(outs["out"], expected)

    def test_local_pointer_argument(self):
        src = """
__kernel void k(__global int* out, __local int* scratch) {
    int li = get_local_id(0);
    scratch[li] = li * 2;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = scratch[(li + 1) % 8];
}
"""
        kernel = compile_kernel(src)
        mem = Memory()
        outb = mem.alloc(32 * 4, "out")
        launch(
            kernel,
            (32,),
            (8,),
            {"out": outb},
            memory=mem,
            local_arg_sizes={"scratch": 8 * 4},
        )
        got = outb.read(np.int32, 32)
        expected = np.array([((g % 8) + 1) % 8 * 2 for g in range(32)])
        np.testing.assert_array_equal(got, expected)


class TestPrivateArrays:
    def test_private_array_is_per_work_item(self):
        src = """
__kernel void k(__global int* out) {
    int tmp[4];
    int gid = get_global_id(0);
    for (int i = 0; i < 4; ++i) tmp[i] = gid * 10 + i;
    int s = 0;
    for (int i = 0; i < 4; ++i) s += tmp[i];
    out[gid] = s;
}
"""
        _, outs = run_scalar_kernel(src, {}, (8,), (4,), {"out": (np.int32, (8,))})
        expected = np.array([g * 40 + 6 for g in range(8)])
        np.testing.assert_array_equal(outs["out"], expected)


class TestTracing:
    def _mt_trace(self):
        kernel = compile_kernel(MT_SOURCE)
        n = 32
        mem = Memory()
        a = np.zeros((n, n), np.float32)
        inb, outb = mem.from_array(a), mem.alloc(a.nbytes)
        res = launch(
            kernel,
            (n, n),
            (16, 16),
            {"in": inb, "out": outb, "W": n, "H": n},
            collect_trace=True,
        )
        return res.trace

    def test_trace_covers_all_groups(self):
        trace = self._mt_trace()
        assert trace.total_groups == 4
        assert trace.sampled_groups == 4
        assert trace.scale == 1.0

    def test_event_spaces_and_counts(self):
        trace = self._mt_trace()
        g = trace.groups[0]
        spaces = [e.space for e in g.events]
        assert AddressSpace.LOCAL in spaces
        assert AddressSpace.GLOBAL in spaces
        # 256 work-items: GL + LS + LL + out store
        assert g.accesses() == 4 * 256
        assert g.barriers == 1

    def test_serialized_stream_orders_by_phase_then_lane(self):
        trace = self._mt_trace()
        g = trace.groups[0]
        stream = g.serialized((AddressSpace.GLOBAL, AddressSpace.LOCAL))
        assert len(stream) == 4 * 256
        # all phase-0 accesses (GL+LS) come before phase-1 (LL+store);
        # within the first phase, lane 0's GL/LS are adjacent
        line_sizes = stream.sizes
        assert (line_sizes == 4).all()

    def test_inst_count_positive_and_scaled(self):
        trace = self._mt_trace()
        assert trace.total_inst_count() > 0

    def test_sampling(self):
        kernel = compile_kernel(MT_SOURCE)
        n = 64
        mem = Memory()
        a = np.zeros((n, n), np.float32)
        inb, outb = mem.from_array(a), mem.alloc(a.nbytes)
        res = launch(
            kernel,
            (n, n),
            (16, 16),
            {"in": inb, "out": outb, "W": n, "H": n},
            collect_trace=True,
            sample_groups=3,
        )
        assert res.trace.total_groups == 16
        assert res.trace.sampled_groups == 3
        assert res.trace.scale == pytest.approx(16 / 3)


class TestLaunchValidation:
    def test_indivisible_sizes_rejected(self):
        kernel = compile_kernel(MT_SOURCE)
        mem = Memory()
        buf = mem.alloc(64)
        with pytest.raises(RuntimeLaunchError, match="divisible"):
            launch(kernel, (30, 30), (16, 16), {"in": buf, "out": buf, "W": 30, "H": 30})

    def test_missing_argument(self):
        kernel = compile_kernel(MT_SOURCE)
        with pytest.raises(RuntimeLaunchError, match="missing"):
            launch(kernel, (16, 16), (16, 16), {})

    def test_unknown_argument(self):
        kernel = compile_kernel(MT_SOURCE)
        mem = Memory()
        buf = mem.alloc(16 * 16 * 4)
        with pytest.raises(RuntimeLaunchError, match="unknown"):
            launch(
                kernel,
                (16, 16),
                (16, 16),
                {"in": buf, "out": buf, "W": 16, "H": 16, "bogus": 1},
            )

    def test_scalar_for_pointer_rejected(self):
        kernel = compile_kernel(MT_SOURCE)
        with pytest.raises(RuntimeLaunchError, match="Buffer"):
            launch(kernel, (16, 16), (16, 16), {"in": 1, "out": 2, "W": 16, "H": 16})

    def test_dimensionality_mismatch(self):
        kernel = compile_kernel(MT_SOURCE)
        mem = Memory()
        buf = mem.alloc(1024)
        with pytest.raises(RuntimeLaunchError, match="dimensionality"):
            launch(kernel, (16, 16), (16,), {"in": buf, "out": buf, "W": 16, "H": 16})


class TestDivergenceDiagnostics:
    """ISSUE-4: the divergence error carries the group, the phase and the
    work-item sets, and the failing path leaves the trace untouched."""

    # one good barrier, then a divergent one: only lanes >= 8 arrive
    SRC = """
__kernel void diverge(__global int* out) {
    __local int lm[16];
    int li = get_local_id(0);
    lm[li] = li;
    barrier(CLK_LOCAL_MEM_FENCE);
    if (li >= 8) {
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    out[get_global_id(0)] = lm[li];
}
"""

    def _execute_traced(self):
        from repro.runtime import GroupTrace
        from repro.runtime.builtins import WorkItemContext
        from repro.runtime.interpreter import GroupExecutor

        kernel = compile_kernel(self.SRC)
        mem = Memory()
        out = mem.alloc(16 * 4, "out")
        arg_values = {a: out for a in kernel.args if a.name == "out"}
        local_buffers = {
            la: mem.alloc(la.nbytes, la.name) for la in kernel.local_arrays
        }
        ctx = WorkItemContext((1,), (16,), (32,))
        gt = GroupTrace((1,), ctx.n_lanes)
        ex = GroupExecutor(kernel, ctx, mem, arg_values, local_buffers, {}, gt)
        with pytest.raises(BarrierDivergenceError) as excinfo:
            ex.run()
        return gt, excinfo.value

    def test_error_carries_structured_fields(self):
        _, err = self._execute_traced()
        assert err.function == "diverge"
        assert err.group_id == (1,)
        assert err.phase == 1  # one successful barrier preceded it
        assert err.arrived == list(range(8, 16))
        assert err.missing == list(range(8))

    def test_message_names_group_and_both_work_item_sets(self):
        _, err = self._execute_traced()
        msg = str(err)
        assert "group (1,)" in msg
        assert "phase 1" in msg
        assert "arrived={8, 9" in msg
        assert "missing={0, 1" in msg

    def test_failing_path_does_not_count_the_barrier(self):
        gt, _ = self._execute_traced()
        # only the first (successful) barrier is counted
        assert gt.barriers == 1
