"""The delta-minimizer: deterministic, idempotent, and small results.

A reproducer is only useful when it is minimal — the shrinker must take
a ~20-statement generated kernel down to the few statements that carry
the failure, never loop forever, and give the same answer every time.
"""

from __future__ import annotations

from repro.fuzz import (
    Block,
    FuzzCase,
    Raw,
    count_statements,
    generate_case,
    run_case,
    shrink_case,
)
from repro.fuzz.generate import BarrierStmt


def _case(body, locals_=(("lm0", 64),)):
    return FuzzCase(
        index=0,
        case_seed=0x1234,
        kernel_name="fz",
        global_size=(32,),
        local_size=(16,),
        in_elems=256,
        p_value=2,
        locals_=list(locals_),
        body=body,
        features=(),
    )


def _filler(n):
    return [Raw(f"acc = (acc + in[gi]) * 1.0f;") for _ in range(n)]


# ---------------------------------------------------------------------------
# synthetic predicate: pure shrinker mechanics
# ---------------------------------------------------------------------------


def test_synthetic_marker_minimizes_to_budget():
    body = (
        _filler(5)
        + [Block("if (li < 4)", [Raw("acc = (acc + 1.0f); /*MAGIC*/")])]
        + [BarrierStmt()]
        + _filler(5)
        + [Block("for (int k0 = 0; k0 < 3; ++k0)", _filler(2))]
    )
    case = _case(body)
    assert count_statements(case.body) == 16

    def interesting(c):
        return "MAGIC" in c.source()

    small = shrink_case(case, interesting)
    # only the marker statement survives: the guard is unwrapped, every
    # filler statement, the barrier and the loop are deleted
    assert count_statements(small.body) == 1
    assert "MAGIC" in small.source()
    # unreferenced __local declarations are pruned too
    assert small.locals_ == []


def test_uninteresting_case_is_returned_unchanged():
    case = _case(_filler(3))
    small = shrink_case(case, lambda c: False)
    assert small.source() == case.source()


def test_shrink_is_idempotent_and_deterministic():
    case = generate_case(99, 3)

    def interesting(c):
        return "barrier" in c.source()

    once = shrink_case(case, interesting)
    again = shrink_case(case, interesting)
    assert once.source() == again.source()  # deterministic
    fixed = shrink_case(once, interesting)
    assert fixed.source() == once.source()  # idempotent


def test_predicate_exceptions_count_as_uninteresting():
    case = _case(_filler(2) + [Raw("acc = (acc + 2.0f);")])

    def fragile(c):
        if count_statements(c.body) < 2:
            raise RuntimeError("reduced too far")
        return True

    small = shrink_case(case, fragile)
    assert count_statements(small.body) == 2


# ---------------------------------------------------------------------------
# end to end: a planted oracle mismatch minimizes within budget
# ---------------------------------------------------------------------------


def test_planted_mismatch_minimizes_within_budget():
    """Corrupt the tape backend's outputs (the oracle's fault-injection
    drill) on a real generated kernel: the oracle reports ``exec-diff``
    and the shrinker must pin it down to a handful of statements."""
    case = generate_case(7, 0)
    assert count_statements(case.body) >= 3
    first = run_case(case, corrupt="tape")
    assert any(m.check == "exec-diff" for m in first.mismatches)

    def still_failing(c):
        got = run_case(c, corrupt="tape")
        return any(m.check == "exec-diff" for m in got.mismatches)

    small = shrink_case(case, still_failing)
    # an always-on output corruption needs no kernel statements at all —
    # the budget is the loose upper bound that matters for real bugs
    assert count_statements(small.body) <= 4
    assert still_failing(small)
    twice = shrink_case(small, still_failing)
    assert twice.source() == small.source()
