"""The promoted fuzz corpus: every committed kernel replays through all
four arbiters on every tier-1 run.

``tests/corpus/*.cl`` plus ``manifest.json`` are the survivors promoted
by ``repro fuzz --promote`` — each carries a distinct *verdict shape*
(execution outcome x analyzer verdict x Grover summary x eviction
behaviour x feature set), so together they pin the decision boundaries
of the whole stack: the backends' bit-identity, the analyzer's
deferral/replay behaviour, the veto gate and the Eq. 3 verdicts.  A
mismatch here means an arbiter moved; regenerate deliberately with
``repro fuzz --promote`` only when the new verdict is understood.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.fuzz import expectation_mismatches, load_manifest, replay_entry
from repro.fuzz.oracle import BACKENDS, input_data
from repro.runtime import Memory
from repro.session import Session

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
MANIFEST = load_manifest(CORPUS_DIR)


def test_corpus_is_committed_and_sized():
    assert len(MANIFEST) == 25
    for entry in MANIFEST:
        assert os.path.exists(os.path.join(CORPUS_DIR, str(entry["file"])))
    # promotion is shape-deduplicated: every committed case pins a
    # distinct verdict shape
    shapes = [e["shape"] for e in MANIFEST]
    assert len(set(shapes)) == len(shapes)


@pytest.mark.parametrize(
    "entry", MANIFEST, ids=[str(e["file"])[:21] for e in MANIFEST]
)
def test_corpus_case_replays(entry):
    outcome = replay_entry(CORPUS_DIR, entry)
    assert not outcome.mismatches, [m.render() for m in outcome.mismatches]
    assert expectation_mismatches(entry, outcome) == []


@pytest.mark.parametrize("backend", BACKENDS)
def test_corpus_backends_bit_identical(backend):
    """Each committed kernel produces reference-identical outputs when
    the backend is pinned through the session config (the same override
    path ``$REPRO_EXEC_BACKEND`` takes)."""
    ran = 0
    for entry in MANIFEST:
        if str(entry["expected"]["exec"]) != "ok":
            continue
        path = os.path.join(CORPUS_DIR, str(entry["file"]))
        with open(path) as fh:
            source = fh.read()
        outs = {}
        for b in ("reference", backend):
            s = Session(env={}, exec_backend=b, workers=1)
            kernel = s.compile_kernel(source, str(entry["kernel"]))
            mem = Memory()
            total = int(np.prod(entry["global_size"]))
            out = mem.alloc(total * 4, "out")
            inb = mem.from_array(input_data(int(entry["in_elems"])), "in")
            s.launch(
                kernel,
                tuple(entry["global_size"]),
                tuple(entry["local_size"]),
                {"out": out, "in": inb, "P": int(entry["p_value"])},
                memory=mem,
            )
            outs[b] = out.read(np.float32, total)
        np.testing.assert_array_equal(
            outs["reference"].view(np.uint8), outs[backend].view(np.uint8)
        )
        ran += 1
        if ran >= 8:  # a spread is plenty; the oracle test covers all 25
            break
    assert ran > 0
